"""DAG task executor with process parallelism, timeouts and retries.

:class:`DagExecutor` runs a set of :class:`~repro.runtime.task.TaskSpec`
objects respecting their dependency edges.  With ``jobs == 1`` tasks run
inline in the current process (no pickling, no subprocess overhead —
the mode the serial CLI default uses); with ``jobs >= 2`` tasks fan out
over a :class:`concurrent.futures.ProcessPoolExecutor`.

Failure semantics (both modes):

* an attempt that raises is retried up to ``task.retries`` times with
  exponential backoff and deterministic per-task jitter;
* a task whose attempts are exhausted is reported ``failed`` — the rest
  of the batch still completes (graceful degradation);
* tasks downstream of a failure are reported ``skipped``;
* a task attempt exceeding ``task.timeout`` seconds is a ``timeout``.
  In process mode the worker is killed and the pool rebuilt (in-flight
  survivors are resubmitted without consuming a retry); inline mode
  cannot preempt, so the attempt is detected as late *after* it returns
  and its value is discarded;
* a worker process that *dies* (segfault, ``os._exit``, OOM kill)
  breaks the pool: the attempts lost with it are charged a retry, the
  pool is rebuilt (a ``pool_rebuild`` telemetry event records why) and
  the batch continues.

Failed attempts report the wall time measured *inside* the worker, not
time-in-queue — an attempt that raised after 0.2s on a saturated pool
is billed 0.2s, no matter how long it waited for a worker slot.

Chaos hooks: pass ``fault_plan`` (a
:class:`~repro.runtime.faults.FaultPlan`) and the executor consults it
once per (task, attempt) at submission time, wrapping the task function
with the armed fault and emitting a ``fault_injected`` telemetry event.
Decisions are a pure function of the plan seed, so serial and pool runs
inject identically.  Pass ``on_result`` to observe every terminal
:class:`TaskResult` (including skips) the moment it is recorded — the
runner's crash-safe journal hangs off this hook.

The executor never raises on task failure; inspect the returned
``TaskResult`` map instead.
"""

from __future__ import annotations

import random
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.runtime.faults import FaultPlan
from repro.runtime.task import TaskResult, TaskSpec, TaskStatus, toposort
from repro.runtime.telemetry import Telemetry

__all__ = ["DagExecutor"]

#: Seconds the event loop waits on in-flight futures per tick.
_TICK_S = 0.05


def _peak_rss_kb() -> Optional[int]:
    try:
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except Exception:  # pragma: no cover - non-POSIX fallback
        return None


def _run_attempt(
    fn: Callable[..., Any], kwargs: Dict[str, Any]
) -> Tuple[bool, Any, float, Optional[int]]:
    """Worker-side wrapper: run one attempt, report wall time and peak RSS.

    Returns ``(True, value, wall, rss)`` on success and
    ``(False, "ExcType: message", wall, rss)`` on failure — errors travel
    back as values so a failed attempt is billed the wall time it spent
    *in the function*, not the time its future spent queued.
    """
    start = time.perf_counter()
    try:
        value = fn(**kwargs)
    except Exception as exc:
        wall = time.perf_counter() - start
        return False, f"{type(exc).__name__}: {exc}", wall, _peak_rss_kb()
    return True, value, time.perf_counter() - start, _peak_rss_kb()


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down hard, terminating any still-running workers."""
    procs = list(getattr(pool, "_processes", {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        try:
            proc.terminate()
        except Exception:  # pragma: no cover - process already gone
            pass
    for proc in procs:
        proc.join(timeout=2.0)


class DagExecutor:
    """Run a task DAG with bounded parallelism, retries and timeouts."""

    def __init__(
        self,
        jobs: int = 1,
        *,
        telemetry: Optional[Telemetry] = None,
        backoff_base_s: float = 0.25,
        backoff_cap_s: float = 8.0,
        sleep: Callable[[float], None] = time.sleep,
        fault_plan: Optional[FaultPlan] = None,
        on_result: Optional[Callable[[TaskResult], None]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.telemetry = telemetry
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self._sleep = sleep
        self.fault_plan = fault_plan
        self.on_result = on_result
        self.metrics = metrics
        self._fault_counts: Dict[str, int] = {}

    # -- public API ---------------------------------------------------------

    def run(self, tasks: Sequence[TaskSpec]) -> Dict[str, TaskResult]:
        """Execute *tasks*; one :class:`TaskResult` per spec, never raises
        on task failure."""
        ordered = toposort(tasks)
        if not ordered:
            return {}
        self._fault_counts = {}
        if self.jobs == 1:
            return self._run_serial(ordered)
        return self._run_pool(ordered)

    # -- shared helpers -----------------------------------------------------

    def _backoff_delay(self, task: TaskSpec, attempt: int) -> float:
        """Exponential backoff with deterministic per-(task, attempt) jitter."""
        base = min(self.backoff_cap_s, self.backoff_base_s * (2 ** (attempt - 1)))
        jitter = random.Random(f"{task.id}:{attempt}").uniform(0.5, 1.5)
        return base * jitter

    #: Event kinds mirrored into metrics counters when a registry is attached.
    _EVENT_COUNTERS = {
        "retry": "retries_total",
        "pool_rebuild": "pool_rebuilds_total",
        "timeout": "timeouts_total",
        "fault_injected": "faults_injected_total",
    }

    def _event(self, kind: str, **fields: Any) -> None:
        if self.telemetry is not None:
            self.telemetry.event(kind, **fields)
        if self.metrics is not None and kind in self._EVENT_COUNTERS:
            self.metrics.inc(self._EVENT_COUNTERS[kind])

    def _notify(self, result: TaskResult) -> None:
        """Deliver a terminal result to ``on_result`` and the metrics."""
        result.faults = self._fault_counts.get(result.id, 0)
        if self.metrics is not None:
            self.metrics.inc(f"tasks_{result.status.value}_total")
            if result.status is not TaskStatus.SKIPPED:
                self.metrics.observe("task_wall_seconds", result.wall_s)
            if result.peak_rss_kb:
                self.metrics.max_gauge("peak_rss_kb", result.peak_rss_kb)
        if self.on_result is not None:
            self.on_result(result)

    def _arm(self, task: TaskSpec, attempt: int) -> Callable[..., Any]:
        """The callable for this attempt, fault-wrapped when the plan fires.

        Consulted exactly once per (task, attempt), at submission — the
        decision is order-free, so serial and pool schedules inject the
        same faults for the same plan seed.
        """
        if self.fault_plan is None:
            return task.fn
        armed = self.fault_plan.arm(task.id, attempt)
        if armed is None:
            return task.fn
        self._fault_counts[task.id] = self._fault_counts.get(task.id, 0) + 1
        self._event(
            "fault_injected",
            task=task.id,
            attempt=attempt,
            fault=armed.kind,
            rule=armed.rule,
        )
        return armed.wrap(task.fn)

    @staticmethod
    def _children(tasks: Sequence[TaskSpec]) -> Dict[str, List[TaskSpec]]:
        children: Dict[str, List[TaskSpec]] = {t.id: [] for t in tasks}
        for task in tasks:
            for dep in task.deps:
                children[dep].append(task)
        return children

    def _skip_dependents(
        self,
        task_id: str,
        children: Dict[str, List[TaskSpec]],
        results: Dict[str, TaskResult],
    ) -> None:
        queue = deque(children[task_id])
        while queue:
            child = queue.popleft()
            if child.id in results:
                continue
            results[child.id] = TaskResult(
                id=child.id,
                status=TaskStatus.SKIPPED,
                error=f"dependency {task_id!r} did not succeed",
            )
            self._notify(results[child.id])
            queue.extend(children[child.id])

    # -- serial (inline) mode ----------------------------------------------

    def _run_serial(self, ordered: Sequence[TaskSpec]) -> Dict[str, TaskResult]:
        results: Dict[str, TaskResult] = {}
        children = self._children(ordered)
        for task in ordered:
            if task.id in results:  # already skipped via a failed dependency
                continue
            results[task.id] = self._attempt_serial(task)
            self._notify(results[task.id])
            if not results[task.id].ok:
                self._skip_dependents(task.id, children, results)
        return results

    def _attempt_serial(self, task: TaskSpec) -> TaskResult:
        attempt = 0
        while True:
            attempt += 1
            fn = self._arm(task, attempt)
            ok, value, wall, rss = _run_attempt(fn, dict(task.kwargs))
            if ok:
                if task.timeout is not None and wall > task.timeout:
                    # Inline mode cannot preempt: report the late attempt as
                    # a timeout and discard its value for parity with the
                    # process mode (where the value is lost with the worker).
                    status, error = TaskStatus.TIMEOUT, f"attempt exceeded {task.timeout}s"
                else:
                    return TaskResult(
                        id=task.id,
                        status=TaskStatus.OK,
                        value=value,
                        attempts=attempt,
                        wall_s=wall,
                        peak_rss_kb=rss,
                    )
            else:
                status, error = TaskStatus.FAILED, value
            if attempt <= task.retries:
                delay = self._backoff_delay(task, attempt)
                self._event("retry", task=task.id, attempt=attempt, delay_s=round(delay, 4), error=error)
                self._sleep(delay)
                continue
            return TaskResult(id=task.id, status=status, error=error, attempts=attempt, wall_s=wall)

    # -- process-pool mode --------------------------------------------------

    def _run_pool(self, ordered: Sequence[TaskSpec]) -> Dict[str, TaskResult]:
        results: Dict[str, TaskResult] = {}
        children = self._children(ordered)
        pending_deps = {t.id: set(t.deps) for t in ordered}
        # Queue entries are (task, attempt-number-about-to-run).
        ready: deque = deque((t, 1) for t in ordered if not t.deps)
        sleeping: List[Tuple[float, TaskSpec, int]] = []
        in_flight: Dict[Any, Tuple[TaskSpec, int, float, Optional[float]]] = {}

        def finish(task: TaskSpec, result: TaskResult) -> None:
            results[task.id] = result
            self._notify(result)
            if result.ok:
                for child in children[task.id]:
                    pending_deps[child.id].discard(task.id)
                    if not pending_deps[child.id] and child.id not in results:
                        ready.append((child, 1))
            else:
                self._skip_dependents(task.id, children, results)

        def fail_or_retry(task: TaskSpec, attempt: int, status: TaskStatus, error: str, wall: float) -> None:
            if attempt <= task.retries:
                delay = self._backoff_delay(task, attempt)
                self._event("retry", task=task.id, attempt=attempt, delay_s=round(delay, 4), error=error)
                sleeping.append((time.monotonic() + delay, task, attempt + 1))
            else:
                finish(task, TaskResult(id=task.id, status=status, error=error, attempts=attempt, wall_s=wall))

        pool = ProcessPoolExecutor(max_workers=self.jobs)
        try:
            while ready or sleeping or in_flight:
                now = time.monotonic()
                due = [entry for entry in sleeping if entry[0] <= now]
                for entry in due:
                    sleeping.remove(entry)
                    ready.appendleft((entry[1], entry[2]))

                while ready and len(in_flight) < self.jobs:
                    task, attempt = ready.popleft()
                    fn = self._arm(task, attempt)
                    future = pool.submit(_run_attempt, fn, dict(task.kwargs))
                    deadline = now + task.timeout if task.timeout is not None else None
                    in_flight[future] = (task, attempt, now, deadline)

                if not in_flight:
                    if sleeping:  # idle until the earliest backoff expires
                        self._sleep(max(0.0, min(e[0] for e in sleeping) - time.monotonic()))
                    continue

                done, _ = wait(list(in_flight), timeout=_TICK_S, return_when=FIRST_COMPLETED)
                broken = False
                for future in done:
                    task, attempt, started, _deadline = in_flight.pop(future)
                    try:
                        ok, value, wall, rss = future.result()
                    except BrokenProcessPool:
                        # The worker running (or queued to run) this attempt
                        # died mid-flight; the attempt is charged, the pool is
                        # rebuilt below.
                        broken = True
                        fail_or_retry(
                            task,
                            attempt,
                            TaskStatus.FAILED,
                            "worker process died (broken pool)",
                            time.monotonic() - started,
                        )
                    except Exception as exc:  # pragma: no cover - pickling etc.
                        fail_or_retry(
                            task,
                            attempt,
                            TaskStatus.FAILED,
                            f"{type(exc).__name__}: {exc}",
                            time.monotonic() - started,
                        )
                    else:
                        if ok:
                            finish(
                                task,
                                TaskResult(
                                    id=task.id,
                                    status=TaskStatus.OK,
                                    value=value,
                                    attempts=attempt,
                                    wall_s=wall,
                                    peak_rss_kb=rss,
                                ),
                            )
                        else:
                            # Worker-side wall time: queue wait is not billed.
                            fail_or_retry(task, attempt, TaskStatus.FAILED, value, wall)

                if broken:
                    survivors = list(in_flight.values())
                    in_flight.clear()
                    _kill_pool(pool)
                    pool = ProcessPoolExecutor(max_workers=self.jobs)
                    self._event("pool_rebuild", reason="broken", resubmitted=len(survivors))
                    for task, attempt, _started, _dl in survivors:
                        ready.appendleft((task, attempt))
                    continue

                now = time.monotonic()
                expired = [f for f, (_t, _a, _s, dl) in in_flight.items() if dl is not None and now > dl]
                if expired:
                    victims = [in_flight[f] for f in expired]
                    survivors = [v for f, v in in_flight.items() if f not in expired]
                    in_flight.clear()
                    # A running future cannot be cancelled: kill the workers
                    # and rebuild the pool, resubmitting innocent bystanders
                    # without charging their retry budget.
                    _kill_pool(pool)
                    pool = ProcessPoolExecutor(max_workers=self.jobs)
                    self._event("pool_rebuild", reason="timeout", resubmitted=len(survivors))
                    for task, attempt, _started, _dl in survivors:
                        ready.appendleft((task, attempt))
                    for task, attempt, started, _dl in victims:
                        self._event("timeout", task=task.id, attempt=attempt, timeout_s=task.timeout)
                        fail_or_retry(
                            task,
                            attempt,
                            TaskStatus.TIMEOUT,
                            f"attempt exceeded {task.timeout}s",
                            now - started,
                        )
        finally:
            _kill_pool(pool)
        return results
