"""Least-squares line fitting.

All three Hurst estimators in the paper's appendix reduce to fitting a
straight line in a log-log plot (pox plot, variance-time plot, periodogram)
and reading the Hurst parameter off the slope.  :func:`linear_fit` is that
shared primitive, returning slope, intercept and the fit's R².
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_1d

__all__ = ["LinearFit", "linear_fit"]


@dataclass(frozen=True)
class LinearFit:
    """Ordinary-least-squares fit ``y ~ intercept + slope * x``."""

    slope: float
    intercept: float
    r_squared: float
    n: int

    def predict(self, x) -> np.ndarray:
        """Evaluate the fitted line at *x*."""
        return self.intercept + self.slope * np.asarray(x, dtype=float)


def linear_fit(x, y, *, weights=None) -> LinearFit:
    """Weighted least-squares straight-line fit.

    Parameters
    ----------
    x, y:
        Data points (1-D, equal length, at least 2 points).
    weights:
        Optional non-negative per-point weights.

    Returns
    -------
    LinearFit
    """
    xa = check_1d(x, "x", min_len=2)
    ya = check_1d(y, "y", min_len=2)
    if xa.shape != ya.shape:
        raise ValueError(f"x and y must have equal length, got {xa.shape} vs {ya.shape}")
    if weights is None:
        w = np.ones_like(xa)
    else:
        w = check_1d(weights, "weights")
        if w.shape != xa.shape:
            raise ValueError("weights must match x in length")
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
        if w.sum() == 0:
            raise ValueError("weights must not all be zero")

    wsum = w.sum()
    xm = (w * xa).sum() / wsum
    ym = (w * ya).sum() / wsum
    sxx = (w * (xa - xm) ** 2).sum()
    if sxx == 0:
        raise ValueError("x values are all identical; slope undefined")
    sxy = (w * (xa - xm) * (ya - ym)).sum()
    slope = sxy / sxx
    intercept = ym - slope * xm

    resid = ya - (intercept + slope * xa)
    ss_res = (w * resid**2).sum()
    ss_tot = (w * (ya - ym) ** 2).sum()
    r2 = 1.0 if ss_tot == 0 else float(1.0 - ss_res / ss_tot)
    return LinearFit(slope=float(slope), intercept=float(intercept), r_squared=r2, n=len(xa))
