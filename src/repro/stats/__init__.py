"""Statistics substrate.

Distributions used by the paper's synthetic models and by our log
synthesizer (hyper-exponential, hyper-Erlang, hyper-gamma, log-uniform,
log-normal), plus order-statistic, moment-matching, correlation and
regression helpers used throughout the analyses.
"""

from repro.stats.distributions import (
    Distribution,
    Exponential,
    Uniform,
    LogUniform,
    TwoStageLogUniform,
    LogNormal,
    Gamma,
    Erlang,
    Weibull,
    HyperExponential,
    HyperErlang,
    HyperGamma,
    Mixture,
    Shifted,
    Truncated,
    Discrete,
)
from repro.stats.percentiles import (
    percentile,
    median,
    interval,
    interval90,
    interval50,
    summary_order_stats,
)
from repro.stats.moments import (
    sample_moments,
    central_to_raw,
    raw_to_central,
    fit_hyper_erlang,
    fit_two_stage_hyperexp,
)
from repro.stats.robust import quantile_skewness, octile_skewness, trimmed_third_moment
from repro.stats.gof import empirical_cdf, ks_statistic, qq_log_distance
from repro.stats.correlation import pearson, spearman, correlation_matrix
from repro.stats.regression import linear_fit, LinearFit

__all__ = [
    "Distribution",
    "Exponential",
    "Uniform",
    "LogUniform",
    "TwoStageLogUniform",
    "LogNormal",
    "Gamma",
    "Erlang",
    "Weibull",
    "HyperExponential",
    "HyperErlang",
    "HyperGamma",
    "Mixture",
    "Shifted",
    "Truncated",
    "Discrete",
    "percentile",
    "median",
    "interval",
    "interval90",
    "interval50",
    "summary_order_stats",
    "sample_moments",
    "central_to_raw",
    "raw_to_central",
    "fit_hyper_erlang",
    "fit_two_stage_hyperexp",
    "empirical_cdf",
    "ks_statistic",
    "qq_log_distance",
    "quantile_skewness",
    "octile_skewness",
    "trimmed_third_moment",
    "pearson",
    "spearman",
    "correlation_matrix",
    "linear_fit",
    "LinearFit",
]
