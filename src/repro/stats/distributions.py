"""Probability distributions used by the workload models and synthesizer.

Every distribution exposes the same interface (:class:`Distribution`):
vectorized ``sample`` / ``pdf`` / ``cdf`` / ``ppf`` plus analytic ``mean`` and
``var`` where they exist.  ``ppf`` is what makes the fractional-Gaussian-noise
copula in :mod:`repro.archive.synthesize` possible: a standard-normal series
with long-range dependence is pushed through ``ppf(Phi(z))`` to obtain a
series with the *target marginal* and (approximately) the target Hurst
parameter.

Mixture distributions (hyper-exponential, hyper-Erlang, hyper-gamma) invert
their CDF numerically with bracketed Brent root finding; the bracket is grown
geometrically from the component means so inversion is robust for the heavy
tails workload modeling requires.

References
----------
* Jann et al., *Modeling of Workload in MPPs*, JSSPP 1997 (hyper-Erlang of
  common order).
* Downey, *A Parallel Workload Model and Its Implications for Processor
  Allocation*, HPDC 1997 (log-uniform).
* Lublin & Feitelson (hyper-gamma).
"""

from __future__ import annotations

import abc
import math
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import optimize, special, stats as spstats

from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_positive, check_probability

__all__ = [
    "Distribution",
    "Exponential",
    "Uniform",
    "LogUniform",
    "TwoStageLogUniform",
    "LogNormal",
    "Gamma",
    "Erlang",
    "Weibull",
    "HyperExponential",
    "HyperErlang",
    "HyperGamma",
    "Mixture",
    "Shifted",
    "Truncated",
    "Discrete",
]

_PPF_EPS = 1e-12


def _check_quantiles(q) -> np.ndarray:
    q = np.asarray(q, dtype=float)
    if np.any((q < 0) | (q > 1)):
        raise ValueError("quantiles must lie in [0, 1]")
    return q



class Distribution(abc.ABC):
    """Abstract continuous (or discrete, see :class:`Discrete`) distribution."""

    @abc.abstractmethod
    def sample(self, n: int, seed: SeedLike = None) -> np.ndarray:
        """Draw ``n`` i.i.d. samples."""

    @abc.abstractmethod
    def cdf(self, x) -> np.ndarray:
        """Cumulative distribution function, vectorized."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Analytic mean."""

    @abc.abstractmethod
    def var(self) -> float:
        """Analytic variance."""

    def std(self) -> float:
        """Analytic standard deviation."""
        return math.sqrt(self.var())

    def pdf(self, x) -> np.ndarray:  # pragma: no cover - overridden where needed
        """Probability density; default differentiates the CDF numerically."""
        x = np.asarray(x, dtype=float)
        h = np.maximum(np.abs(x), 1.0) * 1e-6
        return (self.cdf(x + h) - self.cdf(x - h)) / (2.0 * h)

    # -- quantiles -------------------------------------------------------
    def support(self) -> Tuple[float, float]:
        """Lower/upper bound of the support (used to bracket ``ppf``)."""
        return (0.0, math.inf)

    def ppf(self, q) -> np.ndarray:
        """Quantile function; generic implementation inverts ``cdf``."""
        q = np.asarray(q, dtype=float)
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quantiles must lie in [0, 1]")
        scalar = q.ndim == 0
        qs = np.atleast_1d(q)
        out = np.empty_like(qs)
        for i, qi in enumerate(qs):
            out[i] = self._ppf_scalar(float(qi))
        return float(out[0]) if scalar else out

    def _ppf_scalar(self, q: float) -> float:
        lo, hi = self.support()
        if q <= _PPF_EPS:
            return lo
        if q >= 1.0 - _PPF_EPS:
            q = 1.0 - _PPF_EPS
        # Grow a finite bracket if the support is unbounded above.
        if not math.isfinite(hi):
            hi = max(self.mean(), lo + 1.0, 1.0)
            while self.cdf(hi) < q:
                hi *= 2.0
                if hi > 1e300:  # pragma: no cover - defensive
                    raise RuntimeError("ppf bracket exceeded float range")
        if not math.isfinite(lo):  # pragma: no cover - no such dist here yet
            lo = min(-1.0, hi - 1.0)
            while self.cdf(lo) > q:
                lo *= 2.0
        f_lo = self.cdf(lo) - q
        if f_lo >= 0:
            return float(lo)
        return float(optimize.brentq(lambda x: float(self.cdf(x)) - q, lo, hi, xtol=1e-12, rtol=1e-12))

    def median(self) -> float:
        """The 0.5 quantile."""
        return float(self.ppf(0.5))

    def interval(self, coverage: float = 0.9) -> float:
        """Width of the central *coverage* interval (the paper's '90% interval')."""
        check_probability(coverage, "coverage")
        tail = (1.0 - coverage) / 2.0
        return float(self.ppf(1.0 - tail) - self.ppf(tail))

    def moment(self, k: int) -> float:
        """k-th raw moment; default uses mean/var for k <= 2."""
        if k == 1:
            return self.mean()
        if k == 2:
            m = self.mean()
            return self.var() + m * m
        raise NotImplementedError(f"moment({k}) not implemented for {type(self).__name__}")


# ---------------------------------------------------------------------------
# Elementary distributions
# ---------------------------------------------------------------------------


class Exponential(Distribution):
    """Exponential distribution with given *rate* (lambda)."""

    def __init__(self, rate: float):
        self.rate = check_positive(rate, "rate")

    def sample(self, n: int, seed: SeedLike = None) -> np.ndarray:
        return as_generator(seed).exponential(1.0 / self.rate, size=n)

    def pdf(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return np.where(x < 0, 0.0, self.rate * np.exp(-self.rate * np.maximum(x, 0.0)))

    def cdf(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return np.where(x < 0, 0.0, -np.expm1(-self.rate * np.maximum(x, 0.0)))

    def ppf(self, q) -> np.ndarray:
        q = np.asarray(q, dtype=float)
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quantiles must lie in [0, 1]")
        return -np.log1p(-np.clip(q, 0.0, 1.0 - _PPF_EPS)) / self.rate

    def mean(self) -> float:
        return 1.0 / self.rate

    def var(self) -> float:
        return 1.0 / self.rate**2

    def moment(self, k: int) -> float:
        return math.factorial(k) / self.rate**k

    def __repr__(self) -> str:
        return f"Exponential(rate={self.rate:g})"


class Uniform(Distribution):
    """Continuous uniform on ``[lo, hi]``."""

    def __init__(self, lo: float, hi: float):
        if not hi > lo:
            raise ValueError(f"hi must exceed lo, got [{lo}, {hi}]")
        self.lo = float(lo)
        self.hi = float(hi)

    def support(self) -> Tuple[float, float]:
        return (self.lo, self.hi)

    def sample(self, n: int, seed: SeedLike = None) -> np.ndarray:
        return as_generator(seed).uniform(self.lo, self.hi, size=n)

    def pdf(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        inside = (x >= self.lo) & (x <= self.hi)
        return np.where(inside, 1.0 / (self.hi - self.lo), 0.0)

    def cdf(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return np.clip((x - self.lo) / (self.hi - self.lo), 0.0, 1.0)

    def ppf(self, q) -> np.ndarray:
        q = np.asarray(q, dtype=float)
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quantiles must lie in [0, 1]")
        return self.lo + q * (self.hi - self.lo)

    def mean(self) -> float:
        return 0.5 * (self.lo + self.hi)

    def var(self) -> float:
        return (self.hi - self.lo) ** 2 / 12.0

    def __repr__(self) -> str:
        return f"Uniform({self.lo:g}, {self.hi:g})"


class LogUniform(Distribution):
    """Distribution whose ``log_base`` is uniform on ``[log(lo), log(hi)]``.

    This is the building block of Downey's model: the observed cumulative
    distribution of total service time is approximately linear in log space.
    """

    def __init__(self, lo: float, hi: float, base: float = 2.0):
        self.lo = check_positive(lo, "lo")
        self.hi = check_positive(hi, "hi")
        if not hi > lo:
            raise ValueError(f"hi must exceed lo, got [{lo}, {hi}]")
        self.base = check_positive(base, "base")
        self._log_lo = math.log(lo)
        self._log_hi = math.log(hi)

    def support(self) -> Tuple[float, float]:
        return (self.lo, self.hi)

    def sample(self, n: int, seed: SeedLike = None) -> np.ndarray:
        u = as_generator(seed).uniform(self._log_lo, self._log_hi, size=n)
        return np.exp(u)

    def pdf(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        inside = (x >= self.lo) & (x <= self.hi)
        with np.errstate(divide="ignore", invalid="ignore"):
            dens = 1.0 / (np.maximum(x, _PPF_EPS) * (self._log_hi - self._log_lo))
        return np.where(inside, dens, 0.0)

    def cdf(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        with np.errstate(divide="ignore"):
            val = (np.log(np.maximum(x, _PPF_EPS)) - self._log_lo) / (
                self._log_hi - self._log_lo
            )
        return np.clip(val, 0.0, 1.0)

    def ppf(self, q) -> np.ndarray:
        q = np.asarray(q, dtype=float)
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quantiles must lie in [0, 1]")
        return np.exp(self._log_lo + q * (self._log_hi - self._log_lo))

    def mean(self) -> float:
        return (self.hi - self.lo) / (self._log_hi - self._log_lo)

    def var(self) -> float:
        m2 = (self.hi**2 - self.lo**2) / (2.0 * (self._log_hi - self._log_lo))
        m = self.mean()
        return m2 - m * m

    def __repr__(self) -> str:
        return f"LogUniform({self.lo:g}, {self.hi:g})"


class TwoStageLogUniform(Distribution):
    """Piecewise log-uniform with a breakpoint, as in Downey's refined model.

    With probability *p_low* the value is log-uniform on ``[lo, mid]``, else
    log-uniform on ``[mid, hi]``.  The CDF is continuous and piecewise linear
    in log space with a slope change at *mid*.
    """

    def __init__(self, lo: float, mid: float, hi: float, p_low: float):
        if not (0 < lo < mid < hi):
            raise ValueError(f"need 0 < lo < mid < hi, got {lo}, {mid}, {hi}")
        self.p_low = check_probability(p_low, "p_low")
        self.low = LogUniform(lo, mid)
        self.high = LogUniform(mid, hi)

    def support(self) -> Tuple[float, float]:
        return (self.low.lo, self.high.hi)

    def sample(self, n: int, seed: SeedLike = None) -> np.ndarray:
        rng = as_generator(seed)
        pick_low = rng.random(n) < self.p_low
        out = np.empty(n)
        n_low = int(pick_low.sum())
        out[pick_low] = self.low.sample(n_low, rng)
        out[~pick_low] = self.high.sample(n - n_low, rng)
        return out

    def pdf(self, x) -> np.ndarray:
        return self.p_low * self.low.pdf(x) + (1 - self.p_low) * self.high.pdf(x)

    def cdf(self, x) -> np.ndarray:
        return self.p_low * self.low.cdf(x) + (1 - self.p_low) * self.high.cdf(x)

    def mean(self) -> float:
        return self.p_low * self.low.mean() + (1 - self.p_low) * self.high.mean()

    def var(self) -> float:
        m2 = self.p_low * self.low.moment(2) + (1 - self.p_low) * self.high.moment(2)
        m = self.mean()
        return m2 - m * m

    def moment(self, k: int) -> float:
        if k in (1, 2):
            return super().moment(k) if k == 2 else self.mean()
        raise NotImplementedError

    def __repr__(self) -> str:
        return (
            f"TwoStageLogUniform({self.low.lo:g}, {self.low.hi:g}, "
            f"{self.high.hi:g}, p_low={self.p_low:g})"
        )


class LogNormal(Distribution):
    """Log-normal parameterized by the mean/std of ``log(X)``.

    The workhorse of the log synthesizer: ``median = exp(mu)`` and the 90%
    interval is a monotone function of ``sigma`` alone, so any published
    (median, interval) pair from Table 1 can be matched exactly
    (see :func:`LogNormal.from_median_interval`).
    """

    def __init__(self, mu: float, sigma: float):
        self.mu = float(mu)
        self.sigma = check_positive(sigma, "sigma")

    @classmethod
    def from_median_interval(
        cls, median: float, interval: float, coverage: float = 0.9
    ) -> "LogNormal":
        """Construct the unique log-normal with the given median and central
        *coverage*-interval width."""
        check_positive(median, "median")
        check_positive(interval, "interval")
        mu = math.log(median)
        z = float(spstats.norm.ppf(0.5 + coverage / 2.0))

        def width(sigma: float) -> float:
            return math.exp(mu + z * sigma) - math.exp(mu - z * sigma)

        lo, hi = 1e-9, 1.0
        while width(hi) < interval:
            hi *= 2.0
            if hi > 1e4:  # pragma: no cover - defensive
                raise RuntimeError("interval unreachable for this median")
        sigma = optimize.brentq(lambda s: width(s) - interval, lo, hi, xtol=1e-12)
        return cls(mu, sigma)

    def sample(self, n: int, seed: SeedLike = None) -> np.ndarray:
        return as_generator(seed).lognormal(self.mu, self.sigma, size=n)

    def pdf(self, x) -> np.ndarray:
        return spstats.lognorm.pdf(x, s=self.sigma, scale=math.exp(self.mu))

    def cdf(self, x) -> np.ndarray:
        return spstats.lognorm.cdf(x, s=self.sigma, scale=math.exp(self.mu))

    def ppf(self, q) -> np.ndarray:
        return spstats.lognorm.ppf(_check_quantiles(q), s=self.sigma, scale=math.exp(self.mu))

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0)

    def var(self) -> float:
        return (math.exp(self.sigma**2) - 1.0) * math.exp(2 * self.mu + self.sigma**2)

    def moment(self, k: int) -> float:
        return math.exp(k * self.mu + k * k * self.sigma**2 / 2.0)

    def __repr__(self) -> str:
        return f"LogNormal(mu={self.mu:g}, sigma={self.sigma:g})"


class Gamma(Distribution):
    """Gamma distribution with *shape* (alpha) and *scale* (beta)."""

    def __init__(self, shape: float, scale: float):
        self.shape = check_positive(shape, "shape")
        self.scale = check_positive(scale, "scale")

    def sample(self, n: int, seed: SeedLike = None) -> np.ndarray:
        return as_generator(seed).gamma(self.shape, self.scale, size=n)

    def pdf(self, x) -> np.ndarray:
        return spstats.gamma.pdf(x, a=self.shape, scale=self.scale)

    def cdf(self, x) -> np.ndarray:
        return spstats.gamma.cdf(x, a=self.shape, scale=self.scale)

    def ppf(self, q) -> np.ndarray:
        return spstats.gamma.ppf(_check_quantiles(q), a=self.shape, scale=self.scale)

    def mean(self) -> float:
        return self.shape * self.scale

    def var(self) -> float:
        return self.shape * self.scale**2

    def moment(self, k: int) -> float:
        return self.scale**k * math.exp(
            special.gammaln(self.shape + k) - special.gammaln(self.shape)
        )

    def __repr__(self) -> str:
        return f"Gamma(shape={self.shape:g}, scale={self.scale:g})"


class Erlang(Gamma):
    """Erlang distribution: Gamma with integer shape *k* and given *rate*."""

    def __init__(self, k: int, rate: float):
        if int(k) != k or k < 1:
            raise ValueError(f"k must be a positive integer, got {k}")
        check_positive(rate, "rate")
        super().__init__(shape=int(k), scale=1.0 / rate)
        self.k = int(k)
        self.rate = float(rate)

    def __repr__(self) -> str:
        return f"Erlang(k={self.k}, rate={self.rate:g})"


class Weibull(Distribution):
    """Weibull distribution with *shape* and *scale*."""

    def __init__(self, shape: float, scale: float):
        self.shape = check_positive(shape, "shape")
        self.scale = check_positive(scale, "scale")

    def sample(self, n: int, seed: SeedLike = None) -> np.ndarray:
        return self.scale * as_generator(seed).weibull(self.shape, size=n)

    def pdf(self, x) -> np.ndarray:
        return spstats.weibull_min.pdf(x, c=self.shape, scale=self.scale)

    def cdf(self, x) -> np.ndarray:
        return spstats.weibull_min.cdf(x, c=self.shape, scale=self.scale)

    def ppf(self, q) -> np.ndarray:
        return spstats.weibull_min.ppf(_check_quantiles(q), c=self.shape, scale=self.scale)

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def var(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self.shape)
        g2 = math.gamma(1.0 + 2.0 / self.shape)
        return self.scale**2 * (g2 - g1 * g1)

    def moment(self, k: int) -> float:
        return self.scale**k * math.gamma(1.0 + k / self.shape)

    def __repr__(self) -> str:
        return f"Weibull(shape={self.shape:g}, scale={self.scale:g})"


# ---------------------------------------------------------------------------
# Mixtures
# ---------------------------------------------------------------------------


class Mixture(Distribution):
    """Finite mixture of component :class:`Distribution` objects."""

    def __init__(self, probs: Sequence[float], components: Sequence[Distribution]):
        probs_arr = np.asarray(probs, dtype=float)
        if probs_arr.ndim != 1 or len(probs_arr) != len(components):
            raise ValueError("probs and components must have equal length")
        if np.any(probs_arr < 0):
            raise ValueError("mixture probabilities must be non-negative")
        total = probs_arr.sum()
        if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9):
            raise ValueError(f"mixture probabilities must sum to 1, got {total}")
        self.probs = probs_arr / total
        self.components = list(components)

    def support(self) -> Tuple[float, float]:
        los, his = zip(*(c.support() for c in self.components))
        return (min(los), max(his))

    def sample(self, n: int, seed: SeedLike = None) -> np.ndarray:
        rng = as_generator(seed)
        which = rng.choice(len(self.components), size=n, p=self.probs)
        out = np.empty(n)
        for idx, comp in enumerate(self.components):
            mask = which == idx
            cnt = int(mask.sum())
            if cnt:
                out[mask] = comp.sample(cnt, rng)
        return out

    def pdf(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return sum(p * c.pdf(x) for p, c in zip(self.probs, self.components))

    def cdf(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return sum(p * c.cdf(x) for p, c in zip(self.probs, self.components))

    def mean(self) -> float:
        return float(sum(p * c.mean() for p, c in zip(self.probs, self.components)))

    def var(self) -> float:
        m2 = sum(p * c.moment(2) for p, c in zip(self.probs, self.components))
        m = self.mean()
        return float(m2 - m * m)

    def moment(self, k: int) -> float:
        return float(sum(p * c.moment(k) for p, c in zip(self.probs, self.components)))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{p:.3g}*{c!r}" for p, c in zip(self.probs, self.components)
        )
        return f"Mixture({parts})"


class HyperExponential(Mixture):
    """Mixture of exponentials — the paper's Section 8 notes that two- and
    three-stage hyper-exponentials underlie several published models."""

    def __init__(self, probs: Sequence[float], rates: Sequence[float]):
        super().__init__(probs, [Exponential(r) for r in rates])
        self.rates = [float(r) for r in rates]

    def __repr__(self) -> str:
        return f"HyperExponential(probs={list(self.probs)}, rates={self.rates})"


class HyperErlang(Mixture):
    """Hyper-Erlang of common order *k* (Jann et al. 1997)."""

    def __init__(self, probs: Sequence[float], k: int, rates: Sequence[float]):
        super().__init__(probs, [Erlang(k, r) for r in rates])
        self.k = int(k)
        self.rates = [float(r) for r in rates]

    def __repr__(self) -> str:
        return f"HyperErlang(probs={list(self.probs)}, k={self.k}, rates={self.rates})"


class HyperGamma(Mixture):
    """Two-component gamma mixture (Lublin's runtime distribution)."""

    def __init__(
        self,
        p: float,
        shape1: float,
        scale1: float,
        shape2: float,
        scale2: float,
    ):
        check_probability(p, "p")
        super().__init__([p, 1.0 - p], [Gamma(shape1, scale1), Gamma(shape2, scale2)])
        self.p = float(p)

    def __repr__(self) -> str:
        g1, g2 = self.components
        return f"HyperGamma(p={self.p:g}, {g1!r}, {g2!r})"


# ---------------------------------------------------------------------------
# Adapters
# ---------------------------------------------------------------------------


class Shifted(Distribution):
    """``base + offset`` — e.g. inter-arrival times with a minimum gap."""

    def __init__(self, base: Distribution, offset: float):
        self.base = base
        self.offset = float(offset)

    def support(self) -> Tuple[float, float]:
        lo, hi = self.base.support()
        return (lo + self.offset, hi + self.offset)

    def sample(self, n: int, seed: SeedLike = None) -> np.ndarray:
        return self.base.sample(n, seed) + self.offset

    def pdf(self, x) -> np.ndarray:
        return self.base.pdf(np.asarray(x, dtype=float) - self.offset)

    def cdf(self, x) -> np.ndarray:
        return self.base.cdf(np.asarray(x, dtype=float) - self.offset)

    def ppf(self, q) -> np.ndarray:
        return self.base.ppf(q) + self.offset

    def mean(self) -> float:
        return self.base.mean() + self.offset

    def var(self) -> float:
        return self.base.var()

    def __repr__(self) -> str:
        return f"Shifted({self.base!r}, offset={self.offset:g})"


class Truncated(Distribution):
    """*base* conditioned on ``lo <= X <= hi`` (system limits, e.g. max runtime)."""

    def __init__(self, base: Distribution, lo: float = 0.0, hi: float = math.inf):
        if not hi > lo:
            raise ValueError(f"hi must exceed lo, got [{lo}, {hi}]")
        self.base = base
        self.lo = float(lo)
        self.hi = float(hi)
        self._c_lo = float(base.cdf(self.lo)) if math.isfinite(self.lo) else 0.0
        self._c_hi = float(base.cdf(self.hi)) if math.isfinite(self.hi) else 1.0
        self._mass = self._c_hi - self._c_lo
        if self._mass <= 0:
            raise ValueError("truncation interval has zero probability mass")

    def support(self) -> Tuple[float, float]:
        blo, bhi = self.base.support()
        return (max(blo, self.lo), min(bhi, self.hi))

    def sample(self, n: int, seed: SeedLike = None) -> np.ndarray:
        u = as_generator(seed).uniform(self._c_lo, self._c_hi, size=n)
        return np.asarray(self.base.ppf(u), dtype=float)

    def pdf(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        inside = (x >= self.lo) & (x <= self.hi)
        return np.where(inside, self.base.pdf(x) / self._mass, 0.0)

    def cdf(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        raw = (np.asarray(self.base.cdf(x), dtype=float) - self._c_lo) / self._mass
        return np.clip(raw, 0.0, 1.0)

    def ppf(self, q) -> np.ndarray:
        q = np.asarray(q, dtype=float)
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quantiles must lie in [0, 1]")
        return self.base.ppf(self._c_lo + q * self._mass)

    def mean(self) -> float:
        # No closed form in general: integrate the quantile function.
        qs = np.linspace(0.0, 1.0, 4097)[1:-1]
        return float(np.mean(self.ppf(qs)))

    def var(self) -> float:
        qs = np.linspace(0.0, 1.0, 4097)[1:-1]
        vals = np.asarray(self.ppf(qs), dtype=float)
        return float(np.var(vals))

    def __repr__(self) -> str:
        return f"Truncated({self.base!r}, lo={self.lo:g}, hi={self.hi:g})"


class Discrete(Distribution):
    """Discrete distribution over arbitrary real support points.

    Used for job sizes (degree of parallelism): values are typically the
    integers 1..P with extra mass on powers of two.  ``ppf`` uses the usual
    generalized inverse, so copula transforms produce valid discrete samples.
    """

    def __init__(self, values: Sequence[float], probs: Sequence[float]):
        values_arr = np.asarray(values, dtype=float)
        probs_arr = np.asarray(probs, dtype=float)
        if values_arr.ndim != 1 or values_arr.shape != probs_arr.shape:
            raise ValueError("values and probs must be 1-D of equal length")
        if len(values_arr) == 0:
            raise ValueError("need at least one support point")
        if np.any(probs_arr < 0):
            raise ValueError("probabilities must be non-negative")
        total = probs_arr.sum()
        if total <= 0:
            raise ValueError("probabilities must not all be zero")
        order = np.argsort(values_arr)
        self.values = values_arr[order]
        if np.any(np.diff(self.values) == 0):
            raise ValueError("support points must be distinct")
        self.probs = probs_arr[order] / total
        self._cum = np.cumsum(self.probs)

    def support(self) -> Tuple[float, float]:
        return (float(self.values[0]), float(self.values[-1]))

    def sample(self, n: int, seed: SeedLike = None) -> np.ndarray:
        rng = as_generator(seed)
        return rng.choice(self.values, size=n, p=self.probs)

    def pdf(self, x) -> np.ndarray:  # probability mass, really
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x, dtype=float)
        for v, p in zip(self.values, self.probs):
            out = np.where(np.isclose(x, v), p, out)
        return out

    def cdf(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        idx = np.searchsorted(self.values, x, side="right")
        cum = np.concatenate([[0.0], self._cum])
        return cum[idx]

    def ppf(self, q) -> np.ndarray:
        q = np.asarray(q, dtype=float)
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quantiles must lie in [0, 1]")
        idx = np.searchsorted(self._cum, q, side="left")
        idx = np.clip(idx, 0, len(self.values) - 1)
        return self.values[idx]

    def mean(self) -> float:
        return float(np.dot(self.values, self.probs))

    def var(self) -> float:
        m = self.mean()
        return float(np.dot((self.values - m) ** 2, self.probs))

    def moment(self, k: int) -> float:
        return float(np.dot(self.values**k, self.probs))

    def __repr__(self) -> str:
        return f"Discrete(n={len(self.values)}, support=[{self.values[0]:g}, {self.values[-1]:g}])"
