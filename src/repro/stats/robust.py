"""Robust (order-statistic) shape estimators.

Section 10 lists "robust estimators of the third moment" as future work:
the paper's parametric model needs a shape/skewness input, but Section 3
showed classical moments are dominated by the extreme tail.  These
estimators are the order-moment answer, extending the paper's
median/interval philosophy to the third moment:

* :func:`quantile_skewness` — Bowley's coefficient (quartile skewness)
  and its generalization to any tail quantile;
* :func:`octile_skewness` — the p = 0.125 variant, more tail-sensitive
  while still bounded and outlier-proof;
* :func:`trimmed_third_moment` — the classical standardized third moment
  computed after symmetric trimming, for when an (approximately)
  moment-scaled number is required.

All are bounded or trim-protected: removing the 0.1% 'taily' jobs that
destabilize the classical skewness (the Section 3 experiment) leaves them
essentially unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_1d, check_in_range

__all__ = ["quantile_skewness", "octile_skewness", "trimmed_third_moment"]


def quantile_skewness(x, p: float = 0.25) -> float:
    """Generalized Bowley skewness at tail quantile *p*.

    ``((Q(1-p) - Q(0.5)) - (Q(0.5) - Q(p))) / (Q(1-p) - Q(p))`` — in
    [-1, 1], zero for symmetric distributions, positive for right skew.
    Returns 0.0 when the reference interval has zero width (degenerate
    sample).
    """
    arr = check_1d(x, "x", min_len=3)
    check_in_range(p, 0.0, 0.5, "p", inclusive=False)
    lo, med, hi = np.quantile(arr, [p, 0.5, 1.0 - p])
    width = hi - lo
    if width == 0:
        return 0.0
    return float(((hi - med) - (med - lo)) / width)


def octile_skewness(x) -> float:
    """Quantile skewness at the octiles (p = 0.125): more sensitive to the
    body-tail asymmetry than Bowley's quartile version, still bounded."""
    return quantile_skewness(x, p=0.125)


def trimmed_third_moment(x, *, trim: float = 0.01) -> float:
    """Standardized third central moment after symmetric trimming.

    The fraction *trim* is removed from **each** tail before computing
    ``E[(X - mean)^3] / std^3``, so single extreme jobs cannot dominate.
    Returns 0.0 for degenerate (zero-variance) trimmed samples.
    """
    arr = check_1d(x, "x", min_len=3)
    check_in_range(trim, 0.0, 0.5, "trim", inclusive=False)
    lo, hi = np.quantile(arr, [trim, 1.0 - trim])
    body = arr[(arr >= lo) & (arr <= hi)]
    if body.size < 3:
        return 0.0
    centred = body - body.mean()
    std = body.std()
    if std == 0:
        return 0.0
    return float(np.mean(centred**3) / std**3)
