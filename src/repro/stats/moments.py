"""Moment utilities and moment-matching fitters.

Jann et al. (1997) model runtimes and inter-arrival times with hyper-Erlang
distributions of common order, choosing parameters so the first three
moments match the observed data within each job-size range.
:func:`fit_hyper_erlang` reimplements that procedure: for each candidate
common order *k* the two-branch mixture has a closed-form three-moment
solution (it is the classic two-point Stieltjes moment problem on the
branch means); by default the smallest feasible order is returned, keeping
the branches as variable as the heavy-tailed data demands.

:func:`fit_two_stage_hyperexp` provides the simpler two-moment fit used by
the Feitelson models for runtimes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.stats.distributions import HyperErlang, HyperExponential
from repro.util.validation import check_1d, check_positive

__all__ = [
    "sample_moments",
    "central_to_raw",
    "raw_to_central",
    "fit_hyper_erlang",
    "fit_two_stage_hyperexp",
    "HyperErlangFit",
]


def sample_moments(x, k: int = 3) -> np.ndarray:
    """First *k* raw sample moments ``E[X^j]`` for ``j = 1..k``."""
    arr = check_1d(x, "x", min_len=1)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return np.array([float(np.mean(arr**j)) for j in range(1, k + 1)])


def central_to_raw(mean: float, central: Sequence[float]) -> np.ndarray:
    """Convert central moments ``[mu2, mu3, ...]`` to raw moments
    ``[m1, m2, m3, ...]`` given the mean."""
    central = np.asarray(central, dtype=float)
    m1 = float(mean)
    out = [m1]
    if len(central) >= 1:
        out.append(central[0] + m1**2)
    if len(central) >= 2:
        out.append(central[1] + 3 * m1 * central[0] + m1**3)
    if len(central) > 2:
        raise NotImplementedError("only up to the 3rd moment is supported")
    return np.array(out)


def raw_to_central(raw: Sequence[float]) -> np.ndarray:
    """Convert raw moments ``[m1, m2, m3]`` to ``[mean, var, mu3]``."""
    raw = np.asarray(raw, dtype=float)
    if len(raw) < 2:
        raise ValueError("need at least two raw moments")
    m1, m2 = raw[0], raw[1]
    out = [m1, m2 - m1**2]
    if len(raw) >= 3:
        m3 = raw[2]
        out.append(m3 - 3 * m1 * m2 + 2 * m1**3)
    return np.array(out)


@dataclass(frozen=True)
class HyperErlangFit:
    """Result of a three-moment hyper-Erlang fit."""

    distribution: HyperErlang
    order: int
    target_moments: np.ndarray
    achieved_moments: np.ndarray

    @property
    def relative_errors(self) -> np.ndarray:
        """Per-moment relative error of the fit (should be ~0)."""
        return np.abs(self.achieved_moments - self.target_moments) / np.abs(
            self.target_moments
        )


def _two_point_from_moments(mu1: float, mu2: float, mu3: float):
    """Solve the two-point moment problem: find weights (p, 1-p) on support
    (x1, x2) with the given first three power moments.  Returns ``None``
    when infeasible (negative support or weight outside [0, 1])."""
    denom = mu2 - mu1 * mu1
    if denom <= 0:
        return None
    a = (mu3 - mu1 * mu2) / denom
    b = (mu1 * mu3 - mu2 * mu2) / denom
    disc = a * a - 4.0 * b
    if disc < 0:
        return None
    root = math.sqrt(disc)
    x1 = (a + root) / 2.0
    x2 = (a - root) / 2.0
    if x1 <= 0 or x2 <= 0:
        return None
    if math.isclose(x1, x2, rel_tol=1e-12):
        return None
    p = (mu1 - x2) / (x1 - x2)
    if not 0.0 <= p <= 1.0:
        return None
    return p, x1, x2


def fit_hyper_erlang(
    moments_or_data,
    *,
    order: "str | int" = "smallest",
    max_order: int = 64,
    from_data: Optional[bool] = None,
) -> HyperErlangFit:
    """Fit a two-branch hyper-Erlang of common order by 3-moment matching.

    Parameters
    ----------
    moments_or_data:
        Either a length-3 sequence of raw moments ``[m1, m2, m3]`` or a data
        sample (decided by *from_data*, or by length when ``None``:
        length != 3 means data).
    order:
        ``"smallest"`` (default) selects the smallest feasible common order,
        which keeps each branch maximally variable — the right choice for
        the heavy-tailed runtime/inter-arrival data of this domain, where a
        high order would collapse the mixture into two near-deterministic
        spikes that match three moments but nothing else of the shape.
        ``"largest"`` selects the largest feasible order (the smoothest
        fit), and an integer forces that specific order.
    max_order:
        Search bound for the string modes.

    Returns
    -------
    HyperErlangFit

    Raises
    ------
    ValueError
        If not even ``k = 1`` (the hyper-exponential case) is feasible —
        this happens when the sample's CV is below 1 and the third moment is
        inconsistent with any 2-branch mixture; callers should fall back to
        a plain Erlang/exponential fit.
    """
    arr = np.asarray(moments_or_data, dtype=float)
    if from_data is None:
        from_data = arr.ndim != 1 or arr.shape[0] != 3
    if from_data:
        m1, m2, m3 = sample_moments(arr, 3)
    else:
        m1, m2, m3 = (float(v) for v in arr)
    for v, name in ((m1, "m1"), (m2, "m2"), (m3, "m3")):
        check_positive(v, name)

    if isinstance(order, (int, np.integer)):
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        candidates: Sequence[int] = [int(order)]
    elif order == "smallest":
        candidates = range(1, max_order + 1)
    elif order == "largest":
        candidates = range(max_order, 0, -1)
    else:
        raise ValueError(f"order must be 'smallest', 'largest' or an int, got {order!r}")

    target = np.array([m1, m2, m3])
    for k in candidates:
        c1 = float(k)
        c2 = float(k * (k + 1))
        c3 = float(k * (k + 1) * (k + 2))
        sol = _two_point_from_moments(m1 / c1, m2 / c2, m3 / c3)
        if sol is None:
            continue
        p, x1, x2 = sol
        dist = HyperErlang([p, 1.0 - p], k, [1.0 / x1, 1.0 / x2])
        achieved = np.array([dist.moment(j) for j in (1, 2, 3)])
        return HyperErlangFit(
            distribution=dist, order=k, target_moments=target, achieved_moments=achieved
        )
    raise ValueError(
        "no feasible hyper-Erlang order: the moment triple "
        f"({m1:g}, {m2:g}, {m3:g}) admits no two-branch mixture"
    )


def fit_two_stage_hyperexp(
    mean: float, cv: float, *, balance: float = 0.5
) -> HyperExponential:
    """Two-stage hyper-exponential matching a mean and coefficient of
    variation, using the balanced-means heuristic.

    With ``cv >= 1`` the classic construction sets

    .. math:: p = \\tfrac12\\left(1 + \\sqrt{\\frac{cv^2-1}{cv^2+1}}\\right)

    and rates ``2p/mean`` and ``2(1-p)/mean`` (each branch contributes the
    same expected value — "balanced means").  *balance* skews the branch
    weights: 0.5 is the standard balanced construction.
    """
    check_positive(mean, "mean")
    check_positive(cv, "cv")
    if cv < 1.0:
        raise ValueError(
            f"a hyper-exponential cannot have cv < 1 (got {cv}); use Erlang instead"
        )
    if not 0.0 < balance < 1.0:
        raise ValueError(f"balance must be in (0, 1), got {balance}")
    if math.isclose(cv, 1.0):
        return HyperExponential([1.0 - 1e-9, 1e-9], [1.0 / mean, 1.0 / mean])
    p = 0.5 * (1.0 + math.sqrt((cv**2 - 1.0) / (cv**2 + 1.0)))
    # Balanced means: p / r1 == (1 - p) / r2 == mean / 2 (when balance = 0.5).
    r1 = p / (balance * mean)
    r2 = (1.0 - p) / ((1.0 - balance) * mean)
    return HyperExponential([p, 1.0 - p], [r1, r2])
