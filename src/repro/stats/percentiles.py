"""Order statistics: medians and central intervals.

Section 3 of the paper argues that means and coefficients of variation of
workload attributes are dominated by the extreme tail — removing the 0.1%
'taily' jobs can change the average by 5% and the CV by 40% — so all analyses
use *order moments*: the median and the 90% interval (difference between the
95th and 5th percentiles).  These helpers implement exactly those statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.util.validation import check_1d, check_probability

__all__ = [
    "percentile",
    "median",
    "interval",
    "interval90",
    "interval50",
    "summary_order_stats",
]


def percentile(x, q: float) -> float:
    """The *q*-quantile (``0 <= q <= 1``) of the data, linear interpolation."""
    arr = check_1d(x, "x", min_len=1)
    check_probability(q, "q")
    return float(np.quantile(arr, q))


def median(x) -> float:
    """Sample median."""
    return percentile(x, 0.5)


def interval(x, coverage: float = 0.9) -> float:
    """Width of the central *coverage* interval of the sample.

    ``interval(x, 0.9)`` is the paper's "90% interval": the difference
    between the 95th and 5th percentiles.
    """
    arr = check_1d(x, "x", min_len=1)
    check_probability(coverage, "coverage")
    tail = (1.0 - coverage) / 2.0
    lo, hi = np.quantile(arr, [tail, 1.0 - tail])
    return float(hi - lo)


def interval90(x) -> float:
    """The 90% interval (95th minus 5th percentile)."""
    return interval(x, 0.9)


def interval50(x) -> float:
    """The 50% interval (inter-quartile range); the paper reports it "gave
    virtually the same results" as the 90% interval."""
    return interval(x, 0.5)


@dataclass(frozen=True)
class OrderStats:
    """Median and interval of a sample, the paper's per-variable summary."""

    median: float
    interval: float
    coverage: float
    n: int

    def as_tuple(self) -> tuple:
        return (self.median, self.interval)


def summary_order_stats(x, coverage: float = 0.9) -> OrderStats:
    """Compute the (median, interval) pair the paper reports per attribute."""
    arr = check_1d(x, "x", min_len=1)
    return OrderStats(
        median=float(np.quantile(arr, 0.5)),
        interval=interval(arr, coverage),
        coverage=float(coverage),
        n=int(arr.shape[0]),
    )
