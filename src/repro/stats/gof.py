"""Two-sample goodness-of-fit distances.

Substrate for the model-validation framework
(:mod:`repro.models.validation`): scale-free ways to compare a generated
marginal against a reference one.  Heavy-tailed workload attributes make
the usual mean-based distances useless (Section 3), so the toolkit is
order-statistic based:

* :func:`ks_statistic` — the two-sample Kolmogorov-Smirnov distance,
  sup-norm between empirical CDFs;
* :func:`qq_log_distance` — mean absolute log-ratio of matched quantiles,
  i.e. "by what factor do the distributions disagree, on average across
  their whole range";
* :func:`empirical_cdf` — the shared primitive.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.util.validation import check_1d

__all__ = ["empirical_cdf", "ks_statistic", "qq_log_distance"]


def empirical_cdf(sample, x) -> np.ndarray:
    """Empirical CDF of *sample* evaluated at points *x* (right-continuous)."""
    arr = np.sort(check_1d(sample, "sample", min_len=1))
    x = np.asarray(x, dtype=float)
    return np.searchsorted(arr, x, side="right") / arr.size


def ks_statistic(a, b) -> float:
    """Two-sample Kolmogorov-Smirnov statistic: sup |F_a - F_b| in [0, 1]."""
    aa = np.sort(check_1d(a, "a", min_len=1))
    bb = np.sort(check_1d(b, "b", min_len=1))
    grid = np.concatenate([aa, bb])
    fa = np.searchsorted(aa, grid, side="right") / aa.size
    fb = np.searchsorted(bb, grid, side="right") / bb.size
    return float(np.max(np.abs(fa - fb)))


def qq_log_distance(a, b, *, n_quantiles: int = 99, floor: float = 1e-9) -> float:
    """Mean |log10 Q_a(p) / Q_b(p)| over a central quantile grid.

    Zero when the distributions agree; 1.0 means they disagree by an
    order of magnitude on average.  Quantiles below *floor* are floored so
    zero-valued samples (e.g. zero runtimes) do not blow up the log.
    """
    aa = check_1d(a, "a", min_len=2)
    bb = check_1d(b, "b", min_len=2)
    if n_quantiles < 3:
        raise ValueError(f"n_quantiles must be >= 3, got {n_quantiles}")
    ps = np.linspace(0.01, 0.99, n_quantiles)
    qa = np.maximum(np.quantile(aa, ps), floor)
    qb = np.maximum(np.quantile(bb, ps), floor)
    return float(np.mean(np.abs(np.log10(qa / qb))))
