"""Correlation helpers.

Co-plot's fourth stage reads correlations off arrow angles; these helpers
compute the underlying Pearson/Spearman coefficients and full correlation
matrices without pulling in sklearn (not available offline).
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_1d, check_2d

__all__ = ["pearson", "spearman", "correlation_matrix", "rankdata_average"]


def pearson(x, y) -> float:
    """Pearson product-moment correlation; 0.0 for degenerate input."""
    xa = check_1d(x, "x", min_len=2)
    ya = check_1d(y, "y", min_len=2)
    if xa.shape != ya.shape:
        raise ValueError(f"x and y must have equal length, got {xa.shape} vs {ya.shape}")
    xc = xa - xa.mean()
    yc = ya - ya.mean()
    # Take the square roots separately: multiplying the squared sums first
    # underflows to zero for tiny-magnitude data (|x| ~ 1e-125) even though
    # the correlation is perfectly well defined.
    denom = np.sqrt(xc @ xc) * np.sqrt(yc @ yc)
    if denom == 0:
        return 0.0
    return float(np.clip((xc @ yc) / denom, -1.0, 1.0))


def rankdata_average(x) -> np.ndarray:
    """Ranks (1-based) with ties sharing their average rank."""
    arr = check_1d(x, "x", min_len=1)
    order = np.argsort(arr, kind="mergesort")
    ranks = np.empty(len(arr), dtype=float)
    ranks[order] = np.arange(1, len(arr) + 1, dtype=float)
    # Average ranks within tied groups.
    sorted_vals = arr[order]
    i = 0
    while i < len(arr):
        j = i
        while j + 1 < len(arr) and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        if j > i:
            avg = 0.5 * (i + j) + 1.0
            ranks[order[i : j + 1]] = avg
        i = j + 1
    return ranks


def spearman(x, y) -> float:
    """Spearman rank correlation (Pearson on average ranks)."""
    return pearson(rankdata_average(x), rankdata_average(y))


def correlation_matrix(data, *, method: str = "pearson") -> np.ndarray:
    """Column-by-column correlation matrix of a 2-D array (rows=observations).

    NaN cells are handled pairwise: each entry uses only rows where both
    columns are present, mirroring how the paper copes with the missing
    values of Table 1.
    """
    mat = check_2d(data, "data")
    if method not in ("pearson", "spearman"):
        raise ValueError(f"method must be 'pearson' or 'spearman', got {method!r}")
    corr_fn = pearson if method == "pearson" else spearman
    p = mat.shape[1]
    out = np.eye(p)
    for i in range(p):
        for j in range(i + 1, p):
            mask = ~(np.isnan(mat[:, i]) | np.isnan(mat[:, j]))
            if mask.sum() < 2:
                val = np.nan
            else:
                val = corr_fn(mat[mask, i], mat[mask, j])
            out[i, j] = out[j, i] = val
    return out
