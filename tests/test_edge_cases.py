"""Edge-case tests across modules: each exercises a distinct boundary
behaviour not covered by the per-module suites."""

import numpy as np
import pytest

from repro.coplot import Coplot, coplot_to_svg, render_ascii_map
from repro.workload import MachineInfo, Workload


class TestCoplotEdges:
    def test_minimum_size_analysis(self):
        """Three observations, one variable: the degenerate but legal case."""
        y = np.array([[1.0], [2.0], [3.0]])
        result = Coplot(n_init=2).fit(y)
        assert result.coords.shape == (3, 2)
        assert result.arrows[0].correlation > 0.9  # 1-D data embeds perfectly

    def test_all_identical_observations(self):
        y = np.ones((4, 3))
        result = Coplot(n_init=2).fit(y)
        # Constant variables normalize to zeros: every point at the origin.
        assert np.allclose(result.coords, 0.0)
        assert result.alienation == 0.0

    def test_single_nan_column(self):
        rng = np.random.default_rng(0)
        y = rng.normal(size=(6, 3))
        y[:, 2] = np.nan
        # An all-NaN variable still normalizes (stays NaN) but provides no
        # distance information; pairwise rescaling covers it.
        result = Coplot(n_init=2).fit(y)
        assert result.arrows[2].correlation == 0.0

    def test_svg_with_custom_arrow_length(self):
        rng = np.random.default_rng(1)
        result = Coplot(n_init=2).fit(rng.normal(size=(4, 2)))
        svg = coplot_to_svg(result, arrow_length=2.0)
        assert svg.count("<line") == 2

    def test_ascii_extreme_aspect(self):
        rng = np.random.default_rng(2)
        result = Coplot(n_init=2).fit(rng.normal(size=(4, 2)))
        out = render_ascii_map(result, width=16, height=8)
        assert out.count("\n") >= 8


class TestWorkloadEdges:
    def test_single_job_workload_statistics(self):
        from repro.workload import compute_statistics

        w = Workload.from_arrays(
            machine=MachineInfo("m", 8),
            submit_time=[0.0],
            run_time=[10.0],
            used_procs=[4],
        )
        stats = compute_statistics(w)
        assert stats.runtime_median == 10.0
        assert stats.runtime_interval == 0.0
        assert np.isnan(stats.interarrival_median)  # one job: no gaps

    def test_simultaneous_submits(self):
        from repro.workload import compute_statistics

        w = Workload.from_arrays(
            machine=MachineInfo("m", 8),
            submit_time=[5.0, 5.0, 5.0],
            run_time=[1.0, 2.0, 3.0],
            used_procs=[1, 1, 1],
        )
        stats = compute_statistics(w)
        assert stats.interarrival_median == 0.0

    def test_swf_field_render_parse_inverse(self):
        from repro.workload.fields import SWF_FIELDS

        for field in SWF_FIELDS:
            token = field.render(42.0 if field.dtype == "float" else 42)
            assert field.parse(token) == 42.0

    def test_filter_with_index_array_duplicates(self, small_workload):
        sub = small_workload.filter(np.array([0, 0, 1]))
        assert len(sub) == 3
        assert sub.column("job_id")[0] == sub.column("job_id")[1]


class TestSchedulerEdges:
    def test_zero_runtime_jobs(self):
        from repro.scheduler import FcfsScheduler, simulate

        w = Workload.from_arrays(
            machine=MachineInfo("m", 4),
            submit_time=[0.0, 0.0],
            run_time=[0.0, 0.0],
            used_procs=[4, 4],
        )
        res = simulate(w, FcfsScheduler())
        assert not np.any(np.isnan(res.start))

    def test_job_exactly_machine_sized(self):
        from repro.scheduler import EasyBackfillScheduler, simulate

        w = Workload.from_arrays(
            machine=MachineInfo("m", 16),
            submit_time=[0.0, 1.0],
            run_time=[10.0, 10.0],
            used_procs=[16, 16],
        )
        res = simulate(w, EasyBackfillScheduler())
        assert res.start[1] == pytest.approx(10.0)

    def test_gang_empty_workload(self):
        from repro.scheduler import simulate_gang

        w = Workload.from_jobs([], MachineInfo("m", 8))
        res = simulate_gang(w)
        assert res.submit.size == 0
        assert res.makespan == 0.0


class TestSelfsimEdges:
    def test_hurst_on_short_series_raises_cleanly(self):
        from repro.selfsim import estimate_hurst

        with pytest.raises(ValueError):
            estimate_hurst(np.ones(12), "rs")

    def test_fgn_length_one(self):
        from repro.selfsim import fgn

        x = fgn(1, 0.7, seed=0)
        assert x.shape == (1,)

    def test_aggregate_full_series_single_block(self):
        from repro.selfsim import aggregate_series

        x = np.arange(10.0)
        out = aggregate_series(x, 10)
        assert out.shape == (1,)
        assert out[0] == pytest.approx(4.5)


class TestArchiveEdges:
    def test_minimum_job_count(self):
        from repro.archive import synthesize_workload

        w = synthesize_workload("KTH", n_jobs=100, seed=0)
        assert len(w) == 100

    def test_generator_seed_object_reuse(self):
        """Passing one Generator to two synth calls advances it: the two
        logs differ (deliberate stream sharing)."""
        from repro.archive import synthesize_workload
        from repro.util.rng import as_generator

        gen = as_generator(3)
        a = synthesize_workload("KTH", n_jobs=200, seed=gen)
        b = synthesize_workload("KTH", n_jobs=200, seed=gen)
        assert not np.array_equal(a.column("run_time"), b.column("run_time"))
