"""Tests for map rendering (ASCII, CSV, SVG)."""

import numpy as np
import pytest

from repro.coplot import Coplot, coplot_to_csv, coplot_to_svg, render_ascii_map


@pytest.fixture
def fitted(rng):
    y = rng.normal(size=(6, 3))
    return Coplot(n_init=2).fit(
        y, labels=[f"L{i}" for i in range(6)], signs=["a", "b", "c"]
    )


class TestAscii:
    def test_contains_all_labels(self, fitted):
        out = render_ascii_map(fitted)
        for label in fitted.labels:
            assert label in out

    def test_contains_arrow_info(self, fitted):
        out = render_ascii_map(fitted)
        for arrow in fitted.arrows:
            assert arrow.sign in out

    def test_summary_line(self, fitted):
        assert "alienation" in render_ascii_map(fitted)

    def test_no_arrows_mode(self, fitted):
        out = render_ascii_map(fitted, show_arrows=False)
        assert "Arrows" not in out

    def test_size_validation(self, fitted):
        with pytest.raises(ValueError):
            render_ascii_map(fitted, width=4)

    def test_dimensions(self, fitted):
        out = render_ascii_map(fitted, width=40, height=10)
        lines = out.splitlines()
        assert lines[0] == "+" + "-" * 40 + "+"
        body = [l for l in lines if l.startswith("|")]
        assert len(body) == 10


class TestCsv:
    def test_row_counts(self, fitted):
        lines = coplot_to_csv(fitted).strip().splitlines()
        assert len(lines) == 1 + 6 + 3  # header + observations + arrows

    def test_observation_rows_parse(self, fitted):
        lines = coplot_to_csv(fitted).strip().splitlines()[1:7]
        for line, label in zip(lines, fitted.labels):
            kind, name, x, y, corr = line.split(",")
            assert kind == "observation" and name == label
            float(x), float(y)

    def test_arrow_rows_carry_correlation(self, fitted):
        lines = coplot_to_csv(fitted).strip().splitlines()[7:]
        for line, arrow in zip(lines, fitted.arrows):
            parts = line.split(",")
            assert parts[0] == "arrow"
            assert float(parts[4]) == pytest.approx(arrow.correlation, abs=1e-3)


class TestSvg:
    def test_valid_header_and_footer(self, fitted):
        svg = coplot_to_svg(fitted)
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")

    def test_all_labels_present(self, fitted):
        svg = coplot_to_svg(fitted)
        for label in fitted.labels:
            assert f">{label}</text>" in svg

    def test_one_circle_per_observation(self, fitted):
        assert coplot_to_svg(fitted).count("<circle") == 6

    def test_arrows_drawn_as_lines(self, fitted):
        drawn = sum(1 for a in fitted.arrows if np.linalg.norm(a.direction) > 0)
        assert coplot_to_svg(fitted).count("<line") == drawn

    def test_escaping(self, rng):
        y = rng.normal(size=(3, 2))
        res = Coplot(n_init=2).fit(y, labels=["a<b", "c&d", "e>f"])
        svg = coplot_to_svg(res)
        assert "a&lt;b" in svg and "c&amp;d" in svg


class TestSvgBytes:
    def test_matches_text_rendering(self, fitted):
        from repro.coplot.render import coplot_to_svg_bytes

        data = coplot_to_svg_bytes(fitted)
        assert isinstance(data, bytes)
        assert data == coplot_to_svg(fitted).encode("utf-8")
        assert data.lstrip().startswith(b"<svg")

    def test_size_passthrough(self, fitted):
        from repro.coplot.render import coplot_to_svg_bytes

        assert b'width="320"' in coplot_to_svg_bytes(fitted, size=320)

    def test_package_export(self):
        import repro.coplot

        assert callable(repro.coplot.coplot_to_svg_bytes)
