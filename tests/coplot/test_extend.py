"""Tests for Co-plot projection and bootstrap stability."""

import numpy as np
import pytest

from repro.coplot import Coplot, bootstrap_stability, project_observation


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(7)
    base = rng.normal(size=(10, 2))
    y = np.column_stack(
        [
            base[:, 0],
            2.0 * base[:, 0] + 0.1 * rng.normal(size=10),
            base[:, 1],
            base[:, 0] + base[:, 1],
        ]
    )
    return y, Coplot().fit(y, labels=[f"w{i}" for i in range(10)], signs=list("ABCD"))


class TestProjectObservation:
    def test_existing_row_projects_onto_itself(self, fitted):
        y, result = fitted
        pos, stress = project_observation(result, y[3])
        assert np.linalg.norm(pos - result.coords[3]) < 0.35
        assert stress < 0.35

    def test_duplicate_of_extreme_row(self, fitted):
        y, result = fitted
        extreme = int(np.argmax(np.abs(y[:, 0])))
        pos, _ = project_observation(result, y[extreme])
        dists = np.linalg.norm(result.coords - pos, axis=1)
        assert int(np.argmin(dists)) == extreme

    def test_average_row_lands_centrally(self, fitted):
        y, result = fitted
        pos, _ = project_observation(result, np.nanmean(y, axis=0))
        centroid = result.coords.mean(axis=0)
        spread = np.mean(np.linalg.norm(result.coords - centroid, axis=1))
        assert np.linalg.norm(pos - centroid) < spread

    def test_nan_values_allowed(self, fitted):
        y, result = fitted
        row = y[2].copy()
        row[1] = np.nan
        pos, stress = project_observation(result, row)
        assert np.isfinite(pos).all()

    def test_wrong_length_rejected(self, fitted):
        _, result = fitted
        with pytest.raises(ValueError, match="expected 4 values"):
            project_observation(result, np.zeros(3))

    def test_deterministic(self, fitted):
        y, result = fitted
        a, _ = project_observation(result, y[5], seed=3)
        b, _ = project_observation(result, y[5], seed=3)
        assert np.array_equal(a, b)


class TestBootstrapStability:
    def test_structured_data_is_stable(self, fitted):
        y, _ = fitted
        report = bootstrap_stability(y, n_boot=8, seed=0)
        assert report.mean_disparity < 0.35
        assert report.positional_spread.shape == (10,)
        assert np.all(report.positional_spread >= 0)

    def test_labels_carried(self, fitted):
        y, _ = fitted
        report = bootstrap_stability(
            y, labels=[f"w{i}" for i in range(10)], n_boot=4, seed=0
        )
        assert report.labels == [f"w{i}" for i in range(10)]
        assert set(report.least_stable(2)) <= set(report.labels)

    def test_n_boot_validation(self, fitted):
        y, _ = fitted
        with pytest.raises(ValueError, match="n_boot"):
            bootstrap_stability(y, n_boot=1)

    def test_noise_less_stable_than_structure(self):
        rng = np.random.default_rng(11)
        base = rng.normal(size=(9, 2))
        structured = np.column_stack(
            [base[:, 0], base[:, 0] * 1.5, base[:, 1], -base[:, 1]]
        )
        noise = rng.normal(size=(9, 4))
        fast = Coplot(n_init=2)
        rep_s = bootstrap_stability(structured, n_boot=6, coplot=fast, seed=1)
        rep_n = bootstrap_stability(noise, n_boot=6, coplot=fast, seed=1)
        assert rep_s.mean_disparity < rep_n.mean_disparity

    def test_figure2_reference_use_case(self):
        """The paper's own data: the Figure 2 map is bootstrap-stable."""
        from repro.experiments.common import FIGURE2_SIGNS, production_matrix
        from repro.experiments.figure2 import FIGURE2_NAMES

        y, labels = production_matrix(FIGURE2_SIGNS, FIGURE2_NAMES)
        report = bootstrap_stability(
            y, labels=labels, signs=list(FIGURE2_SIGNS), n_boot=8, seed=0
        )
        assert report.mean_disparity < 0.4


class TestBootstrapEngines:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_engines_agree(self, seed):
        rng = np.random.default_rng(7)
        y = rng.normal(size=(12, 16)) + np.linspace(0, 3, 16)
        ref = bootstrap_stability(y, n_boot=6, seed=seed, engine="reference")
        fast = bootstrap_stability(y, n_boot=6, seed=seed, engine="batched")
        assert ref.labels == fast.labels
        np.testing.assert_allclose(
            ref.positional_spread, fast.positional_spread, atol=1e-10
        )
        assert ref.mean_disparity == pytest.approx(fast.mean_disparity, abs=1e-10)
        np.testing.assert_array_equal(ref.reference, fast.reference)

    def test_engines_agree_with_missing_cells(self):
        rng = np.random.default_rng(3)
        y = rng.normal(size=(10, 12)) + np.linspace(0, 2, 12)
        y[2, 4] = np.nan
        y[7, 9] = np.nan
        ref = bootstrap_stability(y, n_boot=4, seed=1, engine="reference")
        fast = bootstrap_stability(y, n_boot=4, seed=1, engine="batched")
        np.testing.assert_allclose(
            ref.positional_spread, fast.positional_spread, atol=1e-10
        )

    def test_engines_agree_under_custom_coplot(self):
        rng = np.random.default_rng(9)
        y = rng.normal(size=(9, 10))
        cp = Coplot(n_init=3, transform="isotonic", seed=4, ddof=1)
        ref = bootstrap_stability(y, n_boot=4, coplot=cp, seed=2, engine="reference")
        fast = bootstrap_stability(y, n_boot=4, coplot=cp, seed=2, engine="batched")
        np.testing.assert_allclose(
            ref.positional_spread, fast.positional_spread, atol=1e-10
        )

    def test_invalid_engine(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="engine"):
            bootstrap_stability(rng.normal(size=(8, 6)), engine="warp")


class TestProjectionDissimVectorized:
    def test_matches_scalar_city_block_dense(self, fitted):
        from repro.coplot.dissimilarity import city_block
        from repro.coplot.extend import _column_norms, _dissim_to_rows

        y, result = fitted
        rng = np.random.default_rng(5)
        new = rng.normal(size=y.shape[1])
        means, stds = _column_norms(result.y)
        z_new = (new - means) / stds
        old = np.array([city_block(z_new, row) for row in result.z])
        np.testing.assert_array_equal(_dissim_to_rows(z_new, result.z), old)

    def test_matches_scalar_city_block_with_nans(self):
        from repro.coplot.dissimilarity import city_block
        from repro.coplot.extend import _dissim_to_rows

        rng = np.random.default_rng(6)
        z = rng.normal(size=(8, 10))
        z[1, 3] = np.nan
        z[5, 8] = np.nan
        z_new = rng.normal(size=10)
        z_new[2] = np.nan
        old = np.array([city_block(z_new, row) for row in z])
        np.testing.assert_allclose(
            _dissim_to_rows(z_new, z), old, rtol=1e-12, atol=0
        )

    def test_no_shared_variables_raises(self):
        from repro.coplot.extend import _dissim_to_rows

        z = np.full((4, 3), np.nan)
        z[0] = [1.0, 2.0, 3.0]
        with pytest.raises(ValueError, match="share no present variables"):
            _dissim_to_rows(np.array([1.0, np.nan, 2.0]), np.array([[np.nan] * 3]))
