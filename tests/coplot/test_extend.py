"""Tests for Co-plot projection and bootstrap stability."""

import numpy as np
import pytest

from repro.coplot import Coplot, bootstrap_stability, project_observation


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(7)
    base = rng.normal(size=(10, 2))
    y = np.column_stack(
        [
            base[:, 0],
            2.0 * base[:, 0] + 0.1 * rng.normal(size=10),
            base[:, 1],
            base[:, 0] + base[:, 1],
        ]
    )
    return y, Coplot().fit(y, labels=[f"w{i}" for i in range(10)], signs=list("ABCD"))


class TestProjectObservation:
    def test_existing_row_projects_onto_itself(self, fitted):
        y, result = fitted
        pos, stress = project_observation(result, y[3])
        assert np.linalg.norm(pos - result.coords[3]) < 0.35
        assert stress < 0.35

    def test_duplicate_of_extreme_row(self, fitted):
        y, result = fitted
        extreme = int(np.argmax(np.abs(y[:, 0])))
        pos, _ = project_observation(result, y[extreme])
        dists = np.linalg.norm(result.coords - pos, axis=1)
        assert int(np.argmin(dists)) == extreme

    def test_average_row_lands_centrally(self, fitted):
        y, result = fitted
        pos, _ = project_observation(result, np.nanmean(y, axis=0))
        centroid = result.coords.mean(axis=0)
        spread = np.mean(np.linalg.norm(result.coords - centroid, axis=1))
        assert np.linalg.norm(pos - centroid) < spread

    def test_nan_values_allowed(self, fitted):
        y, result = fitted
        row = y[2].copy()
        row[1] = np.nan
        pos, stress = project_observation(result, row)
        assert np.isfinite(pos).all()

    def test_wrong_length_rejected(self, fitted):
        _, result = fitted
        with pytest.raises(ValueError, match="expected 4 values"):
            project_observation(result, np.zeros(3))

    def test_deterministic(self, fitted):
        y, result = fitted
        a, _ = project_observation(result, y[5], seed=3)
        b, _ = project_observation(result, y[5], seed=3)
        assert np.array_equal(a, b)


class TestBootstrapStability:
    def test_structured_data_is_stable(self, fitted):
        y, _ = fitted
        report = bootstrap_stability(y, n_boot=8, seed=0)
        assert report.mean_disparity < 0.35
        assert report.positional_spread.shape == (10,)
        assert np.all(report.positional_spread >= 0)

    def test_labels_carried(self, fitted):
        y, _ = fitted
        report = bootstrap_stability(
            y, labels=[f"w{i}" for i in range(10)], n_boot=4, seed=0
        )
        assert report.labels == [f"w{i}" for i in range(10)]
        assert set(report.least_stable(2)) <= set(report.labels)

    def test_n_boot_validation(self, fitted):
        y, _ = fitted
        with pytest.raises(ValueError, match="n_boot"):
            bootstrap_stability(y, n_boot=1)

    def test_noise_less_stable_than_structure(self):
        rng = np.random.default_rng(11)
        base = rng.normal(size=(9, 2))
        structured = np.column_stack(
            [base[:, 0], base[:, 0] * 1.5, base[:, 1], -base[:, 1]]
        )
        noise = rng.normal(size=(9, 4))
        fast = Coplot(n_init=2)
        rep_s = bootstrap_stability(structured, n_boot=6, coplot=fast, seed=1)
        rep_n = bootstrap_stability(noise, n_boot=6, coplot=fast, seed=1)
        assert rep_s.mean_disparity < rep_n.mean_disparity

    def test_figure2_reference_use_case(self):
        """The paper's own data: the Figure 2 map is bootstrap-stable."""
        from repro.experiments.common import FIGURE2_SIGNS, production_matrix
        from repro.experiments.figure2 import FIGURE2_NAMES

        y, labels = production_matrix(FIGURE2_SIGNS, FIGURE2_NAMES)
        report = bootstrap_stability(
            y, labels=labels, signs=list(FIGURE2_SIGNS), n_boot=8, seed=0
        )
        assert report.mean_disparity < 0.4
