"""Cross-cutting invariance properties of the Co-plot/MDS stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coplot import (
    Coplot,
    arrow_correlation_matrix,
    pairwise_dissimilarity,
    procrustes_disparity,
    smacof,
)
from repro.coplot.mds.base import pairwise_euclidean
from repro.stats.correlation import correlation_matrix


class TestMdsInvariances:
    @given(scale=st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=15)
    def test_alienation_scale_invariant(self, scale):
        """Uniform scaling of the dissimilarities preserves their order, so
        the nonmetric fit quality must be unchanged."""
        rng = np.random.default_rng(0)
        d = pairwise_euclidean(rng.normal(size=(9, 4)))
        a = smacof(d, seed=1, n_init=2)
        b = smacof(scale * d, seed=1, n_init=2)
        assert b.alienation == pytest.approx(a.alienation, abs=1e-6)

    def test_permutation_equivariance(self):
        """Relabelling the observations relabels the map (same geometry)."""
        rng = np.random.default_rng(1)
        d = pairwise_euclidean(rng.normal(size=(10, 3)))
        perm = rng.permutation(10)
        a = smacof(d, seed=2, n_init=2)
        b = smacof(d[np.ix_(perm, perm)], seed=2, n_init=2)
        assert b.alienation == pytest.approx(a.alienation, abs=0.02)
        assert procrustes_disparity(a.coords[perm], b.coords) < 0.05

    def test_monotone_distortion_invariance(self):
        """Nonmetric MDS sees only the order: any strictly increasing
        transform of the dissimilarities yields the same map."""
        rng = np.random.default_rng(2)
        d = pairwise_euclidean(rng.normal(size=(10, 2)))
        a = smacof(d, seed=3, n_init=4)
        b = smacof(np.sqrt(d), seed=3, n_init=4)
        assert procrustes_disparity(a.coords, b.coords) < 0.05


class TestCoplotSemantics:
    def test_arrow_cosines_track_data_correlations(self):
        """Section 2: 'the cosines of angles between these arrows are
        approximately proportional to the correlations between their
        associated variables' — verified on the paper's own data."""
        from repro.experiments.common import FIGURE2_SIGNS, production_matrix
        from repro.experiments.figure2 import FIGURE2_NAMES

        y, labels = production_matrix(FIGURE2_SIGNS, FIGURE2_NAMES)
        result = Coplot().fit(y, labels=labels, signs=list(FIGURE2_SIGNS))
        cosines = arrow_correlation_matrix(result.arrows)
        corr = correlation_matrix(y)
        p = len(result.signs)
        diffs = []
        for i in range(p):
            for j in range(i + 1, p):
                if np.isnan(corr[i, j]):
                    continue
                diffs.append(abs(cosines[i, j] - corr[i, j]))
        # 'Approximately proportional': most pairs land close.
        assert np.median(diffs) < 0.3

    def test_map_independent_of_variable_order(self):
        """Permuting the columns (variables) must not change the geometry."""
        rng = np.random.default_rng(3)
        base = rng.normal(size=(9, 2))
        y = np.column_stack([base[:, 0], base[:, 1], base.sum(axis=1), base[:, 0] * 2])
        perm = [2, 0, 3, 1]
        a = Coplot(n_init=2).fit(y)
        b = Coplot(n_init=2).fit(y[:, perm])
        assert procrustes_disparity(a.coords, b.coords) < 0.05

    def test_duplicated_observation_maps_to_same_point(self):
        rng = np.random.default_rng(4)
        y = rng.normal(size=(8, 4))
        y_dup = np.vstack([y, y[2]])
        result = Coplot(n_init=2).fit(y_dup)
        # Identical rows have zero dissimilarity; the map keeps them an
        # order of magnitude closer than the typical point spacing.
        spread = float(
            np.mean(np.linalg.norm(result.coords - result.coords.mean(axis=0), axis=1))
        )
        assert np.linalg.norm(result.coords[2] - result.coords[8]) < 0.15 * spread

    def test_city_block_dominates_euclidean(self):
        rng = np.random.default_rng(5)
        z = rng.normal(size=(7, 5))
        s1 = pairwise_dissimilarity(z, metric="cityblock")
        s2 = pairwise_dissimilarity(z, metric="euclidean")
        off = ~np.eye(7, dtype=bool)
        assert np.all(s1[off] >= s2[off] - 1e-9)
