"""Tests for Procrustes alignment."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coplot import procrustes_align, procrustes_disparity


def rotation(theta):
    c, s = np.cos(theta), np.sin(theta)
    return np.array([[c, -s], [s, c]])


class TestAlign:
    @given(
        theta=st.floats(min_value=0, max_value=2 * np.pi),
        scale=st.floats(min_value=0.1, max_value=10.0),
        dx=st.floats(min_value=-100, max_value=100),
    )
    def test_property_undoes_similarity_transform(self, theta, scale, dx):
        rng = np.random.default_rng(5)
        ref = rng.normal(size=(8, 2))
        target = scale * ref @ rotation(theta).T + np.array([dx, 1.0])
        aligned = procrustes_align(ref, target)
        assert np.allclose(aligned, ref, atol=1e-6)

    def test_reflection_undone(self, rng):
        ref = rng.normal(size=(6, 2))
        target = ref.copy()
        target[:, 0] *= -1
        aligned = procrustes_align(ref, target)
        assert np.allclose(aligned, ref, atol=1e-8)

    def test_no_scaling_mode(self, rng):
        ref = rng.normal(size=(6, 2))
        target = 3.0 * ref
        aligned = procrustes_align(ref, target, allow_scaling=False)
        # Without scaling the 3x blowup cannot be removed.
        assert not np.allclose(aligned, ref, atol=1e-3)

    def test_degenerate_target(self, rng):
        ref = rng.normal(size=(5, 2))
        aligned = procrustes_align(ref, np.zeros((5, 2)))
        assert np.allclose(aligned, ref.mean(axis=0))

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError, match="share a shape"):
            procrustes_align(rng.normal(size=(5, 2)), rng.normal(size=(4, 2)))


class TestDisparity:
    def test_zero_for_transformed_copy(self, rng):
        ref = rng.normal(size=(7, 2))
        target = 2.0 * ref @ rotation(1.0).T + 5.0
        assert procrustes_disparity(ref, target) == pytest.approx(0.0, abs=1e-10)

    def test_positive_for_noise(self, rng):
        ref = rng.normal(size=(7, 2))
        assert procrustes_disparity(ref, rng.normal(size=(7, 2))) > 0.1

    def test_bounded(self, rng):
        ref = rng.normal(size=(7, 2))
        d = procrustes_disparity(ref, rng.normal(size=(7, 2)))
        assert 0.0 <= d <= 1.0

    def test_coplot_stability_use_case(self, rng):
        """Two Coplot runs with different seeds give the same map up to
        rotation/reflection/scale when the data has genuine 2-D structure
        (pure noise has many equivalent local optima)."""
        from repro.coplot import Coplot

        base = rng.normal(size=(9, 2))
        y = np.column_stack([base[:, 0], base[:, 1], base[:, 0] + base[:, 1]])
        a = Coplot(seed=1).fit(y)
        b = Coplot(seed=99).fit(y)
        assert procrustes_disparity(a.coords, b.coords) < 0.05
