"""Tests for PAVA isotonic regression and Guttman's rank-image transform."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.coplot import isotonic_regression, rank_image

vectors = hnp.arrays(
    float,
    st.integers(min_value=1, max_value=60),
    elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
)


class TestIsotonicRegression:
    def test_already_monotone_unchanged(self):
        y = np.array([1.0, 2.0, 3.0])
        assert np.array_equal(isotonic_regression(y), y)

    def test_single_violation_pooled(self):
        out = isotonic_regression([1.0, 3.0, 2.0])
        assert np.allclose(out, [1.0, 2.5, 2.5])

    def test_decreasing_input_pooled_to_mean(self):
        out = isotonic_regression([3.0, 2.0, 1.0])
        assert np.allclose(out, 2.0)

    @given(vectors)
    def test_property_output_monotone(self, y):
        out = isotonic_regression(y)
        assert np.all(np.diff(out) >= -1e-9)

    @given(vectors)
    def test_property_mean_preserved(self, y):
        # Unweighted PAVA preserves the total (block means).
        assert isotonic_regression(y).mean() == pytest.approx(y.mean(), abs=1e-6)

    @given(vectors)
    def test_property_idempotent(self, y):
        once = isotonic_regression(y)
        twice = isotonic_regression(once)
        assert np.allclose(once, twice)

    @given(vectors)
    def test_property_best_l2_monotone_fit(self, y):
        """PAVA beats (or ties) a simple monotone competitor: the sorted y."""
        fit = isotonic_regression(y)
        competitor = np.sort(y)
        assert np.sum((fit - y) ** 2) <= np.sum((competitor - y) ** 2) + 1e-6

    def test_weights_shift_pool(self):
        out = isotonic_regression([3.0, 1.0], weights=[3.0, 1.0])
        assert np.allclose(out, [2.5, 2.5])

    def test_weight_validation(self):
        with pytest.raises(ValueError, match="positive"):
            isotonic_regression([1.0, 2.0], weights=[1.0, 0.0])
        with pytest.raises(ValueError, match="match"):
            isotonic_regression([1.0, 2.0], weights=[1.0])


class TestRankImage:
    def test_identity_order_sorts(self):
        out = rank_image([3.0, 1.0, 2.0])
        assert np.array_equal(out, [1.0, 2.0, 3.0])

    def test_respects_given_order(self):
        # order says: position 1 has the smallest dissimilarity, then 2, then 0.
        out = rank_image([5.0, 1.0, 3.0], order=np.array([1, 2, 0]))
        assert out[1] == 1.0 and out[2] == 3.0 and out[0] == 5.0

    @given(vectors)
    def test_property_multiset_preserved(self, d):
        out = rank_image(d)
        assert np.allclose(np.sort(out), np.sort(d))

    @given(vectors)
    def test_property_monotone_in_order(self, d):
        rng = np.random.default_rng(0)
        order = rng.permutation(len(d))
        out = rank_image(d, order)
        assert np.all(np.diff(out[order]) >= -1e-12)

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError, match="permutation"):
            rank_image([1.0, 2.0], order=np.array([0, 0]))
