"""Tests for variable elimination and the best-subset search."""

import numpy as np
import pytest

from repro.coplot import Coplot, SubsetScore, best_subset, eliminate_variables


@pytest.fixture
def data_with_noise(rng):
    base = rng.normal(size=(10, 2))
    y = np.column_stack(
        [
            base[:, 0],
            base[:, 0] * 1.5 + 0.05 * rng.normal(size=10),
            base[:, 1],
            -base[:, 1] + 0.05 * rng.normal(size=10),
            rng.normal(size=10),  # pure noise: should be eliminated
        ]
    )
    return y


FAST = Coplot(n_init=2, max_iter=200)


class TestEliminateVariables:
    def test_noise_removed(self, data_with_noise):
        result, removed = eliminate_variables(
            data_with_noise,
            signs=["A", "B", "C", "D", "N"],
            min_correlation=0.85,
            coplot=FAST,
        )
        assert "N" in removed
        assert "N" not in result.signs

    def test_fit_improves(self, data_with_noise):
        full = FAST.fit(data_with_noise)
        result, _ = eliminate_variables(
            data_with_noise, min_correlation=0.85, coplot=FAST
        )
        assert result.average_correlation >= full.average_correlation

    def test_nothing_removed_when_all_fit(self, rng):
        base = rng.normal(size=(8, 2))
        y = np.column_stack([base[:, 0], base[:, 1]])
        result, removed = eliminate_variables(y, min_correlation=0.5, coplot=FAST)
        assert removed == []
        assert len(result.signs) == 2

    def test_min_variables_floor(self, rng):
        y = rng.normal(size=(8, 4))
        result, removed = eliminate_variables(
            y, min_correlation=0.999, min_variables=3, coplot=FAST
        )
        assert len(result.signs) >= 3

    def test_validation(self, data_with_noise):
        with pytest.raises(ValueError, match="min_variables"):
            eliminate_variables(data_with_noise, min_variables=1)
        with pytest.raises(ValueError, match="drop_per_round"):
            eliminate_variables(data_with_noise, drop_per_round=0)

    def test_removal_order_worst_first(self, data_with_noise):
        # Four strongly planted variables plus one noise column: the FIRST
        # drop must be the noise variable (later rounds may legitimately
        # reorganize the map).
        _, removed = eliminate_variables(
            data_with_noise,
            signs=["A", "B", "C", "D", "N"],
            min_correlation=0.95,
            coplot=FAST,
        )
        assert removed and removed[0] == "N"


class TestBestSubset:
    def test_returns_sorted_scores(self, data_with_noise):
        scores = best_subset(
            data_with_noise, 2, signs=["A", "B", "C", "D", "N"], coplot=FAST, top=5
        )
        assert len(scores) == 5
        corr = [s.average_correlation for s in scores]
        assert corr == sorted(corr, reverse=True)

    def test_noise_not_in_winner(self, data_with_noise):
        scores = best_subset(
            data_with_noise, 2, signs=["A", "B", "C", "D", "N"], coplot=FAST, top=1
        )
        assert "N" not in scores[0].signs

    def test_candidates_restriction(self, data_with_noise):
        scores = best_subset(
            data_with_noise,
            2,
            signs=["A", "B", "C", "D", "N"],
            candidates=["A", "C", "N"],
            coplot=FAST,
            top=3,
        )
        for s in scores:
            assert set(s.signs) <= {"A", "C", "N"}

    def test_unknown_candidate_rejected(self, data_with_noise):
        with pytest.raises(ValueError, match="unknown candidate"):
            best_subset(
                data_with_noise, 2, signs=["A", "B", "C", "D", "N"], candidates=["ZZ"]
            )

    def test_k_validation(self, data_with_noise):
        with pytest.raises(ValueError, match="k must be"):
            best_subset(data_with_noise, 0)
        with pytest.raises(ValueError, match="k must be"):
            best_subset(data_with_noise, 6)

    def test_too_few_candidates(self, data_with_noise):
        with pytest.raises(ValueError, match="candidate variables"):
            best_subset(
                data_with_noise,
                3,
                signs=["A", "B", "C", "D", "N"],
                candidates=["A", "B"],
            )

    def test_dominates(self, data_with_noise):
        scores = best_subset(
            data_with_noise, 2, signs=["A", "B", "C", "D", "N"], coplot=FAST, top=5
        )
        a = scores[0]
        worse = SubsetScore(
            signs=("x",),
            alienation=a.alienation + 0.5,
            average_correlation=a.average_correlation - 0.5,
            min_correlation=0.0,
            result=a.result,
        )
        assert a.dominates(worse)
        assert not worse.dominates(a)
