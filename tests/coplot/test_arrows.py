"""Tests for Co-plot stage 4 (variable arrows)."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coplot import (
    Arrow,
    angle_between,
    arrow_correlation_matrix,
    fit_arrow,
    fit_arrows,
)
from repro.stats.correlation import pearson


class TestFitArrow:
    def test_axis_aligned_variable(self, rng):
        coords = rng.normal(size=(20, 2))
        arrow = fit_arrow(coords, coords[:, 0], "x")
        assert arrow.correlation == pytest.approx(1.0)
        assert abs(arrow.direction[0]) == pytest.approx(1.0, abs=1e-6)

    def test_negative_variable_flips_direction(self, rng):
        coords = rng.normal(size=(20, 2))
        pos = fit_arrow(coords, coords[:, 1])
        neg = fit_arrow(coords, -coords[:, 1])
        assert angle_between(pos, neg) == pytest.approx(180.0, abs=1e-4)

    def test_unit_direction(self, rng):
        coords = rng.normal(size=(15, 2))
        arrow = fit_arrow(coords, rng.normal(size=15))
        assert np.linalg.norm(arrow.direction) == pytest.approx(1.0)

    @given(st.floats(min_value=0.0, max_value=2 * math.pi))
    def test_property_maximal_over_directions(self, theta):
        rng = np.random.default_rng(17)
        coords = rng.normal(size=(25, 2))
        v = rng.normal(size=25) + coords[:, 0]
        arrow = fit_arrow(coords, v)
        candidate = np.array([math.cos(theta), math.sin(theta)])
        assert arrow.correlation >= pearson(v, coords @ candidate) - 1e-9

    def test_nan_values_ignored(self, rng):
        coords = rng.normal(size=(20, 2))
        v = coords[:, 0].copy()
        v[0] = np.nan
        arrow = fit_arrow(coords, v)
        assert arrow.correlation == pytest.approx(1.0)

    def test_too_few_points_zero_arrow(self, rng):
        coords = rng.normal(size=(5, 2))
        v = np.full(5, np.nan)
        v[0] = 1.0
        arrow = fit_arrow(coords, v)
        assert arrow.correlation == 0.0
        assert np.allclose(arrow.direction, 0.0)

    def test_constant_variable_zero_arrow(self, rng):
        coords = rng.normal(size=(10, 2))
        arrow = fit_arrow(coords, np.full(10, 3.0))
        assert arrow.correlation == 0.0

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="does not match"):
            fit_arrow(rng.normal(size=(5, 2)), np.zeros(4))

    def test_angle_degrees_range(self, rng):
        coords = rng.normal(size=(10, 2))
        arrow = fit_arrow(coords, rng.normal(size=10))
        assert 0.0 <= arrow.angle_degrees < 360.0


class TestFitArrows:
    def test_one_per_column(self, rng):
        coords = rng.normal(size=(12, 2))
        z = rng.normal(size=(12, 4))
        arrows = fit_arrows(coords, z, ["a", "b", "c", "d"])
        assert [a.sign for a in arrows] == ["a", "b", "c", "d"]

    def test_default_signs(self, rng):
        arrows = fit_arrows(rng.normal(size=(8, 2)), rng.normal(size=(8, 2)))
        assert arrows[0].sign == "v0"

    def test_sign_count_validated(self, rng):
        with pytest.raises(ValueError):
            fit_arrows(rng.normal(size=(8, 2)), rng.normal(size=(8, 2)), ["only-one"])


class TestAngles:
    def test_angle_between_orthogonal(self):
        a = Arrow("a", np.array([1.0, 0.0]), 1.0)
        b = Arrow("b", np.array([0.0, 1.0]), 1.0)
        assert angle_between(a, b) == pytest.approx(90.0)

    def test_zero_arrow_gives_nan(self):
        a = Arrow("a", np.array([1.0, 0.0]), 1.0)
        z = Arrow("z", np.zeros(2), 0.0)
        assert math.isnan(angle_between(a, z))

    def test_correlation_matrix_cosines(self, rng):
        """Correlated variables produce arrows whose cosine approximates
        their correlation (the paper's stage 4 interpretation)."""
        base = rng.normal(size=(40, 2))
        v1 = base[:, 0]
        v2 = 0.8 * base[:, 0] + 0.6 * base[:, 1]
        arrows = fit_arrows(base, np.column_stack([v1, v2]))
        cos = arrow_correlation_matrix(arrows)[0, 1]
        assert cos == pytest.approx(pearson(v1, v2), abs=0.05)

    def test_correlation_matrix_diagonal(self, rng):
        arrows = fit_arrows(rng.normal(size=(10, 2)), rng.normal(size=(10, 3)))
        m = arrow_correlation_matrix(arrows)
        assert np.allclose(np.diag(m), 1.0)
        assert np.allclose(m, m.T, equal_nan=True)
