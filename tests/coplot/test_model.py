"""Tests for the Coplot pipeline and CoplotResult."""

import numpy as np
import pytest

from repro.coplot import Coplot, CoplotResult


@pytest.fixture
def structured_data(rng):
    """10 observations whose variables have planted structure: A~B, C~-D,
    E independent noise."""
    base = rng.normal(size=(10, 2))
    y = np.column_stack(
        [
            base[:, 0] + 0.05 * rng.normal(size=10),
            2 * base[:, 0] + 0.1 * rng.normal(size=10),
            base[:, 1] + 0.05 * rng.normal(size=10),
            -base[:, 1] + 0.05 * rng.normal(size=10),
            rng.normal(size=10),
        ]
    )
    return y


@pytest.fixture
def fitted(structured_data):
    return Coplot().fit(
        structured_data,
        labels=[f"w{i}" for i in range(10)],
        signs=["A", "B", "C", "D", "E"],
    )


class TestFitValidation:
    def test_too_few_observations(self):
        with pytest.raises(ValueError, match="at least 3"):
            Coplot().fit(np.zeros((2, 3)))

    def test_label_mismatch(self, structured_data):
        with pytest.raises(ValueError, match="labels"):
            Coplot().fit(structured_data, labels=["a"])

    def test_sign_mismatch(self, structured_data):
        with pytest.raises(ValueError, match="signs"):
            Coplot().fit(structured_data, signs=["a"])

    def test_duplicate_labels_rejected(self, structured_data):
        with pytest.raises(ValueError, match="unique"):
            Coplot().fit(structured_data, labels=["x"] * 10)

    def test_duplicate_signs_rejected(self, structured_data):
        with pytest.raises(ValueError, match="unique"):
            Coplot().fit(structured_data, signs=["s"] * 5)

    def test_default_names(self, structured_data):
        res = Coplot().fit(structured_data)
        assert res.labels[0] == "obs0"
        assert res.signs[0] == "v0"


class TestResultBasics:
    def test_shapes(self, fitted):
        assert fitted.coords.shape == (10, 2)
        assert len(fitted.arrows) == 5
        assert fitted.dissimilarity.shape == (10, 10)

    def test_deterministic(self, structured_data):
        a = Coplot(seed=3).fit(structured_data)
        b = Coplot(seed=3).fit(structured_data)
        assert np.array_equal(a.coords, b.coords)

    def test_correlations_in_range(self, fitted):
        assert np.all(fitted.correlations >= 0.0)
        assert np.all(fitted.correlations <= 1.0)

    def test_average_and_min(self, fitted):
        assert fitted.min_correlation <= fitted.average_correlation

    def test_planted_structure_found(self, fitted):
        # Correlated pair A, B: nearly parallel arrows.
        from repro.coplot.arrows import angle_between

        assert angle_between(fitted.arrow("A"), fitted.arrow("B")) < 20.0
        # Anti-correlated pair C, D: nearly opposite.
        assert angle_between(fitted.arrow("C"), fitted.arrow("D")) > 160.0
        # Noise variable fits worst.
        assert fitted.arrow("E").correlation == fitted.min_correlation

    def test_summary_text(self, fitted):
        assert "10 observations x 5 variables" in fitted.summary()


class TestResultLookups:
    def test_index_of(self, fitted):
        assert fitted.index_of("w3") == 3
        with pytest.raises(KeyError):
            fitted.index_of("nope")

    def test_arrow_lookup(self, fitted):
        assert fitted.arrow("A").sign == "A"
        with pytest.raises(KeyError):
            fitted.arrow("Z")

    def test_position_and_distance(self, fitted):
        d = fitted.distance("w0", "w1")
        assert d == pytest.approx(
            float(np.linalg.norm(fitted.position("w0") - fitted.position("w1")))
        )
        assert fitted.distance("w0", "w0") == 0.0

    def test_distances_from_sorted(self, fitted):
        dists = fitted.distances_from("w0")
        assert "w0" not in dists
        values = list(dists.values())
        assert values == sorted(values)

    def test_centroid(self, fitted):
        assert np.allclose(fitted.centroid(), fitted.coords.mean(axis=0))


class TestInterpretation:
    def test_variable_clusters_cover_all(self, fitted):
        clusters = fitted.variable_clusters()
        flat = [s for c in clusters for s in c]
        assert sorted(flat) == ["A", "B", "C", "D", "E"]

    def test_cluster_pairing(self, fitted):
        clusters = fitted.variable_clusters(max_angle=25.0)
        ab = next(c for c in clusters if "A" in c)
        assert "B" in ab
        cd = next(c for c in clusters if "C" in c)
        assert "D" not in cd  # anti-correlated, never same cluster

    def test_characterization_sign_consistency(self, fitted):
        """The observation with the largest A value projects positively on
        the A arrow."""
        top = int(np.argmax(fitted.y[:, 0]))
        label = fitted.labels[top]
        assert fitted.characterization(label)["A"] > 0

    def test_outliers_factor(self, fitted):
        # Large factor: nothing qualifies.
        assert fitted.outliers(factor=100.0) == []

    def test_outlier_detected_for_extreme_observation(self, rng):
        y = rng.normal(size=(8, 3))
        y[0] += 25.0
        res = Coplot().fit(y)
        assert "obs0" in res.outliers(factor=1.5)


class TestConfigurations:
    def test_euclidean_metric_runs(self, structured_data):
        res = Coplot(metric="euclidean").fit(structured_data)
        assert res.alienation < 0.3

    def test_isotonic_transform_runs(self, structured_data):
        res = Coplot(transform="isotonic").fit(structured_data)
        assert res.alienation < 0.3

    def test_three_dimensional_map(self, structured_data):
        res = Coplot(dim=3).fit(structured_data)
        assert res.coords.shape == (10, 3)
        assert res.arrows[0].direction.shape == (3,)
