"""Property tests: vectorized MDS kernels ≡ their reference implementations.

The batched SMACOF engine and the block-merge PAVA are perf rewrites of
scalar loops; these tests are the permanent guarantee that the rewrite
changed the speed and nothing else.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coplot.mds.base import pairwise_euclidean
from repro.coplot.mds.monotone import (
    _pava_rows,
    isotonic_regression,
    isotonic_regression_reference,
)
from repro.coplot.mds.smacof import smacof

# Values with frequent exact ties (halves) plus generic floats: PAVA's
# block merging is most delicate around equal neighbours.
_tieable = st.one_of(
    st.integers(min_value=-8, max_value=8).map(lambda v: v / 2.0),
    st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
)


class TestPavaEquivalence:
    @given(y=st.lists(_tieable, min_size=1, max_size=60))
    @settings(max_examples=150, deadline=None)
    def test_unweighted_matches_reference(self, y):
        got = isotonic_regression(y)
        want = isotonic_regression_reference(y)
        np.testing.assert_allclose(got, want, rtol=0, atol=1e-12)

    @given(
        y=st.lists(_tieable, min_size=1, max_size=40),
        wseed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=150, deadline=None)
    def test_weighted_matches_reference(self, y, wseed):
        w = np.random.default_rng(wseed).uniform(0.1, 5.0, size=len(y))
        got = isotonic_regression(y, weights=w)
        want = isotonic_regression_reference(y, weights=w)
        np.testing.assert_allclose(got, want, rtol=0, atol=1e-12)

    @given(y=st.lists(_tieable, min_size=1, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_result_is_monotone_and_mean_preserving(self, y):
        fit = isotonic_regression(y)
        assert np.all(np.diff(fit) >= -1e-12)
        assert np.mean(fit) == pytest.approx(np.mean(y), abs=1e-9)

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        k=st.integers(min_value=1, max_value=5),
        m=st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=80, deadline=None)
    def test_rows_kernel_matches_per_row_fits(self, seed, k, m):
        """The flat batched merge never couples rows: row i of the batch
        equals the 1-D fit of row i alone."""
        y2d = np.random.default_rng(seed).normal(size=(k, m))
        got = _pava_rows(y2d)
        for i in range(k):
            np.testing.assert_allclose(
                got[i], isotonic_regression_reference(y2d[i]), rtol=0, atol=1e-12
            )


class TestSmacofEngineEquivalence:
    @pytest.mark.parametrize("transform", ["isotonic", "rank-image", "metric"])
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_batched_matches_reference(self, transform, seed):
        rng = np.random.default_rng(seed + 100)
        d = pairwise_euclidean(rng.normal(size=(12, 4)))
        a = smacof(d, seed=seed, n_init=8, transform=transform, engine="batched")
        b = smacof(d, seed=seed, n_init=8, transform=transform, engine="reference")
        # Same seed must select the same restart and land on the same map.
        np.testing.assert_allclose(a.coords, b.coords, rtol=0, atol=1e-9)
        assert a.alienation == pytest.approx(b.alienation, abs=1e-9)
        assert a.stress == pytest.approx(b.stress, abs=1e-9)
        assert a.n_iter == b.n_iter
        assert a.converged == b.converged

    def test_single_restart_matches(self):
        d = pairwise_euclidean(np.random.default_rng(5).normal(size=(9, 3)))
        a = smacof(d, seed=7, n_init=1, engine="batched")
        b = smacof(d, seed=7, n_init=1, engine="reference")
        np.testing.assert_allclose(a.coords, b.coords, rtol=0, atol=1e-9)

    def test_unknown_engine_rejected(self):
        d = pairwise_euclidean(np.random.default_rng(0).normal(size=(5, 2)))
        with pytest.raises(ValueError, match="engine"):
            smacof(d, engine="turbo")
