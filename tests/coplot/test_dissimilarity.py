"""Tests for Co-plot stage 2 (city-block dissimilarities)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.coplot import city_block, euclidean, minkowski, pairwise_dissimilarity

matrices = hnp.arrays(
    float,
    st.tuples(st.integers(min_value=2, max_value=10), st.integers(min_value=1, max_value=6)),
    elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
)


class TestPairMetrics:
    def test_city_block_known(self):
        assert city_block([0.0, 0.0], [3.0, 4.0]) == pytest.approx(7.0)

    def test_euclidean_known(self):
        assert euclidean([0.0, 0.0], [3.0, 4.0]) == pytest.approx(5.0)

    def test_minkowski_interpolates(self):
        a, b = [0.0, 0.0], [3.0, 4.0]
        d15 = minkowski(a, b, 1.5)
        assert euclidean(a, b) < d15 < city_block(a, b)

    def test_minkowski_p_below_one_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            minkowski([0.0], [1.0], 0.5)

    def test_nan_rescaling(self):
        # One of two coordinates missing: the present difference is doubled
        # (p / p_present scaling) so sparser pairs stay comparable.
        assert city_block([1.0, np.nan], [3.0, 5.0]) == pytest.approx(4.0)

    def test_no_shared_coordinates_rejected(self):
        with pytest.raises(ValueError, match="no present variables"):
            city_block([np.nan, 1.0], [2.0, np.nan])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            city_block([1.0], [1.0, 2.0])


class TestPairwiseMatrix:
    @given(matrices)
    def test_property_metric_axioms(self, z):
        s = pairwise_dissimilarity(z)
        assert np.allclose(s, s.T)
        assert np.allclose(np.diag(s), 0.0)
        assert np.all(s >= 0)
        n = z.shape[0]
        # Triangle inequality for the city-block metric (no NaNs here).
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert s[i, j] <= s[i, k] + s[k, j] + 1e-8

    def test_matches_pair_function(self, rng):
        z = rng.normal(size=(5, 4))
        s = pairwise_dissimilarity(z)
        assert s[1, 3] == pytest.approx(city_block(z[1], z[3]))

    def test_euclidean_metric_option(self, rng):
        z = rng.normal(size=(4, 3))
        s = pairwise_dissimilarity(z, metric="euclidean")
        assert s[0, 2] == pytest.approx(euclidean(z[0], z[2]))

    def test_float_metric(self, rng):
        z = rng.normal(size=(4, 3))
        s = pairwise_dissimilarity(z, metric=3.0)
        assert s[0, 1] == pytest.approx(minkowski(z[0], z[1], 3.0))

    def test_unknown_metric(self):
        with pytest.raises(ValueError, match="unknown metric"):
            pairwise_dissimilarity(np.zeros((3, 2)), metric="hamming")

    def test_nan_path_agrees_with_pair_function(self, rng):
        z = rng.normal(size=(5, 4))
        z[1, 2] = np.nan
        z[3, 0] = np.nan
        s = pairwise_dissimilarity(z)
        for i in range(5):
            for j in range(i + 1, 5):
                assert s[i, j] == pytest.approx(city_block(z[i], z[j]))

    def test_disjoint_nan_pair_rejected(self):
        z = np.array([[np.nan, 1.0], [2.0, np.nan], [1.0, 1.0]])
        with pytest.raises(ValueError, match="share no present"):
            pairwise_dissimilarity(z)

    def test_identical_rows_zero(self):
        z = np.array([[1.0, 2.0], [1.0, 2.0], [0.0, 0.0]])
        s = pairwise_dissimilarity(z)
        assert s[0, 1] == 0.0

    def test_table1_style_matrix_computable(self):
        """The actual Figure 1 input (with N/A cells) must be computable."""
        from repro.experiments.common import production_matrix
        from repro.coplot import normalize_matrix
        from repro.workload.variables import VARIABLES

        y, _ = production_matrix(list(VARIABLES))
        s = pairwise_dissimilarity(normalize_matrix(y))
        assert not np.any(np.isnan(s))
        assert np.all(s[~np.eye(10, dtype=bool)] > 0)
