"""Tests for the MDS stack: classical scaling, alienation, SMACOF, SSA."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coplot import (
    classical_mds,
    coefficient_of_alienation,
    kruskal_stress,
    monotonicity_coefficient,
    smacof,
    smallest_space_analysis,
)
from repro.coplot.mds.base import (
    MDSResult,
    check_dissimilarity,
    pairwise_euclidean,
    upper_triangle,
)


def random_config(n, dim, seed=0):
    return np.random.default_rng(seed).normal(size=(n, dim))


class TestBaseHelpers:
    def test_pairwise_euclidean_known(self):
        x = np.array([[0.0, 0.0], [3.0, 4.0]])
        assert pairwise_euclidean(x)[0, 1] == pytest.approx(5.0)

    def test_upper_triangle_order(self):
        m = np.array([[0, 1, 2], [1, 0, 3], [2, 3, 0]], dtype=float)
        assert np.array_equal(upper_triangle(m), [1, 2, 3])

    def test_check_rejects_asymmetric(self):
        m = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValueError, match="symmetric"):
            check_dissimilarity(m)

    def test_check_rejects_negative(self):
        m = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(ValueError, match="non-negative"):
            check_dissimilarity(m)

    def test_check_rejects_nonzero_diagonal(self):
        m = np.array([[1.0, 2.0], [2.0, 1.0]])
        with pytest.raises(ValueError, match="zero diagonal"):
            check_dissimilarity(m)

    def test_check_rejects_nan(self):
        m = np.array([[0.0, np.nan], [np.nan, 0.0]])
        with pytest.raises(ValueError, match="NaN"):
            check_dissimilarity(m)

    def test_check_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            check_dissimilarity(np.zeros((2, 3)))


class TestClassicalMDS:
    def test_recovers_euclidean_configuration(self):
        x = random_config(10, 2)
        d = pairwise_euclidean(x)
        coords = classical_mds(d, dim=2)
        assert np.allclose(pairwise_euclidean(coords), d, atol=1e-8)

    def test_centred_output(self):
        d = pairwise_euclidean(random_config(8, 2, seed=1))
        coords = classical_mds(d)
        assert np.allclose(coords.mean(axis=0), 0.0, atol=1e-10)

    def test_higher_dim_projection(self):
        x = random_config(12, 5, seed=2)
        d = pairwise_euclidean(x)
        coords = classical_mds(d, dim=2)
        assert coords.shape == (12, 2)

    def test_dim_validation(self):
        d = pairwise_euclidean(random_config(4, 2))
        with pytest.raises(ValueError):
            classical_mds(d, dim=0)
        with pytest.raises(ValueError):
            classical_mds(d, dim=5)


class TestAlienation:
    def test_perfect_monotone_gives_mu_one(self):
        s = np.array([1.0, 2.0, 3.0, 4.0])
        d = np.array([10.0, 20.0, 30.0, 40.0])
        assert monotonicity_coefficient(s, d) == pytest.approx(1.0)
        assert coefficient_of_alienation(s, d) == pytest.approx(0.0)

    def test_reversed_gives_mu_minus_one(self):
        s = np.array([1.0, 2.0, 3.0])
        d = np.array([3.0, 2.0, 1.0])
        assert monotonicity_coefficient(s, d) == pytest.approx(-1.0)
        # Eq. 4 is symmetric in the sign of mu: a perfectly *reversed*
        # order also has zero alienation (the map is a mirror image).
        assert coefficient_of_alienation(s, d) == pytest.approx(0.0)

    def test_random_order_high_alienation(self):
        rng = np.random.default_rng(2)
        s = rng.random(45)
        d = rng.random(45)
        assert coefficient_of_alienation(s, d) > 0.5

    def test_nonlinear_monotone_still_perfect(self):
        """Weak monotonicity only needs order agreement, not linearity."""
        s = np.array([1.0, 2.0, 3.0, 4.0])
        assert monotonicity_coefficient(s, np.exp(s)) == pytest.approx(1.0)

    def test_all_ties_defined(self):
        s = np.array([1.0, 1.0, 1.0])
        d = np.array([2.0, 3.0, 4.0])
        assert monotonicity_coefficient(s, d) == 1.0

    @given(st.integers(min_value=3, max_value=20))
    def test_property_bounded(self, n):
        rng = np.random.default_rng(n)
        s, d = rng.random(n), rng.random(n)
        mu = monotonicity_coefficient(s, d)
        assert -1.0 <= mu <= 1.0

    def test_accepts_matrices_and_configs(self):
        x = random_config(6, 2)
        d = pairwise_euclidean(x)
        # s as matrix, d as configuration: a perfect fit.
        assert coefficient_of_alienation(d, x) == pytest.approx(0.0, abs=1e-12)

    def test_stress_zero_for_equal(self):
        d = np.array([1.0, 2.0])
        assert kruskal_stress(d, d) == 0.0

    def test_stress_positive_for_mismatch(self):
        assert kruskal_stress(np.array([1.0, 2.0]), np.array([2.0, 1.0])) > 0


class TestSmacof:
    @pytest.mark.parametrize("transform", ["metric", "isotonic", "rank-image"])
    def test_perfect_recovery_2d(self, transform):
        d = pairwise_euclidean(random_config(10, 2, seed=3))
        res = smacof(d, transform=transform, seed=0, n_init=4)
        assert res.alienation < 1e-4
        assert res.converged

    def test_result_fields(self):
        d = pairwise_euclidean(random_config(6, 2))
        res = smacof(d, seed=0, n_init=2)
        assert isinstance(res, MDSResult)
        assert res.n_observations == 6
        assert res.dim == 2
        assert res.n_iter >= 1

    def test_deterministic_for_seed(self):
        d = pairwise_euclidean(random_config(8, 3, seed=4))
        a = smacof(d, seed=7, n_init=3)
        b = smacof(d, seed=7, n_init=3)
        assert np.array_equal(a.coords, b.coords)

    def test_output_centred(self):
        d = pairwise_euclidean(random_config(8, 3, seed=5))
        res = smacof(d, seed=0)
        assert np.allclose(res.coords.mean(axis=0), 0.0, atol=1e-8)

    def test_explicit_init_used(self):
        x = random_config(8, 2, seed=6)
        d = pairwise_euclidean(x)
        res = smacof(d, init=x, transform="metric")
        # Starting at the answer: converges immediately to zero stress.
        assert res.stress < 1e-10

    def test_init_shape_validated(self):
        d = pairwise_euclidean(random_config(5, 2))
        with pytest.raises(ValueError, match="init"):
            smacof(d, init=np.zeros((4, 2)))

    def test_degenerate_all_zero(self):
        res = smacof(np.zeros((4, 4)))
        assert res.alienation == 0.0
        assert np.allclose(res.coords, 0.0)

    def test_parameter_validation(self):
        d = pairwise_euclidean(random_config(5, 2))
        with pytest.raises(ValueError, match="transform"):
            smacof(d, transform="bogus")
        with pytest.raises(ValueError, match="select_by"):
            smacof(d, select_by="magic")
        with pytest.raises(ValueError, match="n_init"):
            smacof(d, n_init=0)
        with pytest.raises(ValueError, match="dim"):
            smacof(d, dim=0)

    def test_nonmetric_beats_metric_on_transformed_distances(self):
        """A monotone distortion of perfect distances: nonmetric MDS should
        still reach ~zero alienation, metric need not."""
        d = pairwise_euclidean(random_config(12, 2, seed=8))
        warped = d**3  # strictly monotone -> same order
        res = smacof(warped, transform="isotonic", seed=0, n_init=4)
        assert res.alienation < 1e-3


class TestSSA:
    def test_defaults_are_deterministic(self):
        d = pairwise_euclidean(random_config(9, 4, seed=9))
        a = smallest_space_analysis(d)
        b = smallest_space_analysis(d)
        assert np.array_equal(a.coords, b.coords)

    def test_quality_on_projectable_data(self):
        d = pairwise_euclidean(random_config(10, 2, seed=10))
        res = smallest_space_analysis(d)
        assert res.alienation < 1e-4

    def test_moderate_alienation_on_high_dim(self):
        d = pairwise_euclidean(random_config(12, 8, seed=11))
        res = smallest_space_analysis(d)
        # 8-D data cannot map perfectly to 2-D, but SSA should stay sane.
        assert 0.0 < res.alienation < 0.5


class TestChunkedAlienation:
    def test_chunked_path_matches_direct(self):
        """Above the chunk threshold the block-accumulated sums must equal
        the full broadcast exactly."""
        rng = np.random.default_rng(7)
        m = 3000  # beyond the chunk threshold
        s = rng.random(m)
        d = s + 0.2 * rng.random(m)
        ds = s[:, None] - s[None, :]
        dd = d[:, None] - d[None, :]
        direct = float(np.sum(ds * dd)) / float(np.sum(np.abs(ds) * np.abs(dd)))
        assert monotonicity_coefficient(s, d) == pytest.approx(direct, abs=1e-12)

    def test_large_configuration_workable(self):
        """A 120-observation map (7140 pairs) computes without blowing
        memory — the production-scale path."""
        x = random_config(120, 3, seed=8)
        d = pairwise_euclidean(x)
        theta = coefficient_of_alienation(d, x)
        assert theta == pytest.approx(0.0, abs=1e-10)
