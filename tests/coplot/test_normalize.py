"""Tests for Co-plot stage 1 (normalization)."""

import numpy as np
import pytest
from hypothesis import assume, given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.coplot import normalize_matrix, zscore

columns = hnp.arrays(
    float,
    st.integers(min_value=2, max_value=40),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)


class TestZscore:
    def test_known_values(self):
        out = zscore([0.0, 10.0])
        assert np.allclose(out, [-1.0, 1.0])

    @given(columns)
    def test_property_zero_mean_unit_std(self, x):
        assume(np.std(x) > 1e-9)
        z = zscore(x)
        assert abs(z.mean()) < 1e-7
        assert np.std(z) == pytest.approx(1.0, abs=1e-7)

    def test_constant_column_zeros(self):
        assert np.allclose(zscore([5.0, 5.0, 5.0]), 0.0)

    def test_nan_preserved_and_ignored(self):
        out = zscore([0.0, 10.0, np.nan])
        assert np.isnan(out[2])
        assert np.allclose(out[:2], [-1.0, 1.0])

    def test_all_nan(self):
        out = zscore([np.nan, np.nan])
        assert np.all(np.isnan(out))

    def test_ddof(self):
        x = [0.0, 1.0, 2.0]
        z0 = zscore(x, ddof=0)
        z1 = zscore(x, ddof=1)
        assert abs(z1[0]) < abs(z0[0])  # sample std is larger

    def test_input_not_mutated(self):
        x = np.array([1.0, 2.0, 3.0])
        zscore(x)
        assert np.array_equal(x, [1.0, 2.0, 3.0])

    @given(columns, st.floats(min_value=0.1, max_value=100), st.floats(min_value=-50, max_value=50))
    def test_affine_invariance(self, x, scale, shift):
        assume(np.std(x) > 1e-6)
        assume(np.std(x * scale) > 1e-9)
        a = zscore(x)
        b = zscore(x * scale + shift)
        assert np.allclose(a, b, atol=1e-6)


class TestNormalizeMatrix:
    def test_per_column(self):
        y = np.array([[0.0, 100.0], [10.0, 200.0]])
        z = normalize_matrix(y)
        assert np.allclose(z, [[-1.0, -1.0], [1.0, 1.0]])

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            normalize_matrix([1.0, 2.0])

    def test_preserves_shape(self, rng):
        y = rng.normal(size=(7, 5))
        assert normalize_matrix(y).shape == (7, 5)

    def test_mixed_nan_columns(self):
        y = np.array([[1.0, np.nan], [2.0, 1.0], [3.0, 3.0]])
        z = normalize_matrix(y)
        assert np.isnan(z[0, 1])
        assert abs(np.nanmean(z[:, 1])) < 1e-9
