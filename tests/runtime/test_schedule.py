"""Journal-driven scheduling tests: LPT ordering and its fallback."""

from repro.runtime import JOURNAL_NAME, RunJournal, historical_wall_times, longest_first


class TestLongestFirst:
    def test_orders_by_descending_history(self):
        history = {"a": 1.0, "b": 5.0, "c": 3.0}
        assert longest_first(["a", "b", "c"], history) == ["b", "c", "a"]

    def test_no_history_preserves_input_order_exactly(self):
        ids = ["table1", "figure1", "figure2"]
        assert longest_first(ids, {}) == ids
        assert longest_first(ids, None) == ids

    def test_unknown_tasks_go_first_in_input_order(self):
        # An unknown task may be the longest: submit it early.
        history = {"a": 1.0, "b": 5.0}
        assert longest_first(["a", "new1", "b", "new2"], history) == ["new1", "new2", "b", "a"]

    def test_deterministic_and_pure(self):
        ids = ["x", "y", "z"]
        history = {"x": 2.0, "y": 2.0, "z": 1.0}
        first = longest_first(ids, history)
        assert first == longest_first(ids, history)
        # Equal wall times keep input order (stable sort).
        assert first == ["x", "y", "z"]

    def test_does_not_mutate_input(self):
        ids = ["a", "b"]
        longest_first(ids, {"a": 1.0, "b": 2.0})
        assert ids == ["a", "b"]


class TestHistoricalWallTimes:
    def test_missing_journal_yields_empty(self, tmp_path):
        assert historical_wall_times(tmp_path) == {}

    def test_harvests_ok_entries_only(self, tmp_path):
        journal = RunJournal(tmp_path / JOURNAL_NAME)
        journal.meta(seed=0)
        journal.record("fast", status="ok", wall_s=0.5)
        journal.record("slow", status="ok", wall_s=9.0)
        journal.record("broken", status="failed", wall_s=3.0)
        journal.record("instant", status="ok", wall_s=0.0)
        history = historical_wall_times(tmp_path)
        assert history == {"fast": 0.5, "slow": 9.0}

    def test_latest_record_wins(self, tmp_path):
        journal = RunJournal(tmp_path / JOURNAL_NAME)
        journal.record("x", status="failed", wall_s=1.0)
        journal.record("x", status="ok", wall_s=2.0)
        assert historical_wall_times(tmp_path) == {"x": 2.0}

    def test_feeds_longest_first(self, tmp_path):
        journal = RunJournal(tmp_path / JOURNAL_NAME)
        journal.record("table1", status="ok", wall_s=1.0)
        journal.record("stability", status="ok", wall_s=30.0)
        history = historical_wall_times(tmp_path)
        assert longest_first(["table1", "figure9", "stability"], history) == [
            "figure9",
            "stability",
            "table1",
        ]
