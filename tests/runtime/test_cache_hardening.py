"""Cache hardening tests: strict keys, checksums, quarantine, locks, CLI.

The multi-process contention test uses real OS processes (not the
executor) against one shared cache directory — the scenario is two
independent ``repro-experiments`` invocations racing on the same key.
"""

import json
import multiprocessing
import time

import pytest

from repro.runtime.cache import (
    CACHE_VERSION,
    CacheKeyError,
    ResultCache,
    cache_key,
    canonical_json,
    main,
    payload_checksum,
)


class TestStrictCanonicalization:
    def test_canonical_json_is_sorted_and_minimal(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_non_encodable_key_raises(self):
        with pytest.raises(CacheKeyError):
            cache_key("exp", {"bad": object()}, "fp")

    def test_non_encodable_kwarg_value_raises(self):
        with pytest.raises(CacheKeyError):
            cache_key("exp", {"s": {1, 2}}, "fp")

    def test_nan_in_key_raises(self):
        with pytest.raises(CacheKeyError):
            cache_key("exp", {"x": float("nan")}, "fp")

    def test_cache_key_error_is_a_type_error(self):
        # Call sites that caught TypeError from json.dumps keep working.
        assert issubclass(CacheKeyError, TypeError)

    def test_put_rejects_non_encodable_payload(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="fp")
        key = cache.key("exp", {})
        with pytest.raises(CacheKeyError):
            cache.put(key, {"x": object()})
        assert cache.get(key) is None

    def test_put_normalizes_payload_like_a_reload(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="fp")
        key = cache.key("exp", {})
        cache.put(key, {"t": (1, 2), "ok": True})
        assert cache.get(key) == {"t": [1, 2], "ok": True}


class TestChecksum:
    def _entry(self, tmp_path, payload=None):
        cache = ResultCache(str(tmp_path), fingerprint="fp")
        key = cache.key("exp", {"seed": 0})
        cache.put(key, payload or {"report": "fine"})
        return cache, key

    def test_checksum_is_stored_and_verifies(self, tmp_path):
        cache, key = self._entry(tmp_path)
        entry = json.loads(cache.entry_path(key).read_text())
        assert entry["checksum"] == payload_checksum(entry["payload"])
        assert cache.verify_entry(cache.entry_path(key)) == "ok"

    def test_bitflip_in_payload_is_detected(self, tmp_path):
        cache, key = self._entry(tmp_path)
        path = cache.entry_path(key)
        entry = json.loads(path.read_text())
        entry["payload"]["report"] = "fIne"  # silent corruption
        path.write_text(canonical_json(entry, allow_nan=True))
        assert cache.verify_entry(path) == "corrupt"
        assert cache.get(key) is None
        assert path.with_suffix(".corrupt").exists()
        # Quarantined, not deleted: the damaged bytes survive for post-mortem.
        assert not path.exists()

    def test_recompute_after_quarantine_repopulates(self, tmp_path):
        cache, key = self._entry(tmp_path)
        path = cache.entry_path(key)
        path.write_text("{ not json")
        assert cache.get(key) is None
        cache.put(key, {"report": "fresh"})
        assert cache.get(key) == {"report": "fresh"}

    def test_version_mismatch_is_plain_miss_without_quarantine(self, tmp_path):
        cache, key = self._entry(tmp_path)
        path = cache.entry_path(key)
        entry = json.loads(path.read_text())
        entry["version"] = CACHE_VERSION - 1
        path.write_text(canonical_json(entry, allow_nan=True))
        assert cache.get(key) is None
        assert path.exists(), "well-formed old-format entry must not be quarantined"
        assert not path.with_suffix(".corrupt").exists()


class TestLock:
    def test_lock_acquires_and_releases(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="fp")
        key = cache.key("exp", {})
        with cache.lock(key) as acquired:
            assert acquired is True
        with cache.lock(key) as acquired:  # released: second take succeeds
            assert acquired is True

    def test_contended_lock_times_out_and_yields_false(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="fp")
        key = cache.key("exp", {})
        with cache.lock(key) as outer:
            assert outer is True
            # A second handle (fresh fd, so flock really contends) gives
            # up after the timeout instead of deadlocking.
            start = time.monotonic()
            with cache.lock(key, timeout=0.2, poll_s=0.02) as inner:
                assert inner is False
            assert time.monotonic() - start < 5.0

    def test_lockfiles_are_never_unlinked_by_release(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="fp")
        key = cache.key("exp", {})
        with cache.lock(key):
            pass
        assert cache.entry_path(key).with_suffix(".lock").exists()


class TestGetOrCompute:
    def test_computes_once_then_hits(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="fp")
        key = cache.key("exp", {})
        calls = []
        payload, hit = cache.get_or_compute(key, lambda: calls.append(1) or {"n": 1})
        assert (payload, hit) == ({"n": 1}, False)
        payload, hit = cache.get_or_compute(key, lambda: calls.append(1) or {"n": 2})
        assert (payload, hit) == ({"n": 1}, True)
        assert len(calls) == 1

    def test_refresh_recomputes_and_republishes(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="fp")
        key = cache.key("exp", {})
        cache.put(key, {"n": 1})
        payload, hit = cache.get_or_compute(key, lambda: {"n": 2}, refresh=True)
        assert (payload, hit) == ({"n": 2}, False)
        assert cache.get(key) == {"n": 2}


def _contend(cache_dir, key, log_path, out_path):
    """One racing runner: compute-once-or-read, then report what it saw."""
    from repro.runtime.cache import ResultCache

    cache = ResultCache(cache_dir, fingerprint="fp")

    def compute():
        with open(log_path, "a", encoding="utf-8") as fh:
            fh.write("computed\n")
        time.sleep(0.3)  # widen the race window: losers must wait, not recompute
        return {"answer": 42}

    payload, _hit = cache.get_or_compute(key, compute, lock_timeout=30.0)
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True)


class TestMultiProcessContention:
    def test_concurrent_runners_compute_each_key_exactly_once(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        log_path = str(tmp_path / "computes.log")
        key = ResultCache(cache_dir, fingerprint="fp").key("exp", {"seed": 0})
        procs = [
            multiprocessing.Process(
                target=_contend,
                args=(cache_dir, key, log_path, str(tmp_path / f"out{i}.json")),
            )
            for i in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        with open(log_path, encoding="utf-8") as fh:
            computes = fh.readlines()
        assert len(computes) == 1, f"{len(computes)} runners computed; expected exactly 1"
        outputs = {(tmp_path / f"out{i}.json").read_text() for i in range(4)}
        assert outputs == {'{"answer": 42}'}


class TestMaintenanceCli:
    def _populate(self, tmp_path):
        cache = ResultCache(str(tmp_path))  # real code fingerprint, like the CLI
        good = cache.key("exp", {"seed": 0})
        cache.put(good, {"report": "fine"})
        stale = ResultCache(str(tmp_path), fingerprint="old")
        stale_key = stale.key("exp", {"seed": 1})
        stale.put(stale_key, {"report": "old"})
        bad = cache.key("exp", {"seed": 2})
        cache.put(bad, {"report": "doomed"})
        cache.entry_path(bad).write_text("{ torn")
        return cache, good, stale_key, bad

    def test_verify_reports_and_exits_nonzero_on_corruption(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert main(["verify", "--cache-dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "1 ok, 1 stale, 1 corrupt" in out

    def test_verify_clean_cache_exits_zero(self, tmp_path, capsys):
        cache = ResultCache(str(tmp_path))
        cache.put(cache.key("exp", {}), {"report": "fine"})
        assert main(["verify", "--cache-dir", str(tmp_path)]) == 0

    def test_verify_quarantine_moves_corrupt_entries(self, tmp_path, capsys):
        cache, _good, _stale, bad = self._populate(tmp_path)
        assert main(["verify", "--quarantine", "--cache-dir", str(tmp_path)]) == 1
        assert not cache.entry_path(bad).exists()
        assert cache.entry_path(bad).with_suffix(".corrupt").exists()
        # Second pass: corruption is gone, only ok + stale remain.
        assert main(["verify", "--cache-dir", str(tmp_path)]) == 0

    def test_prune_removes_stale_entries_and_lockfiles(self, tmp_path, capsys):
        cache, good, stale_key, _bad = self._populate(tmp_path)
        with cache.lock(good):
            pass
        assert main(["prune", "--cache-dir", str(tmp_path)]) == 0
        assert cache.get(good) is not None, "prune must keep current entries"
        assert not cache.entry_path(stale_key).exists()
        assert not cache.entry_path(good).with_suffix(".lock").exists()

    def test_prune_corrupt_removes_quarantined_files(self, tmp_path, capsys):
        cache, _good, _stale, bad = self._populate(tmp_path)
        assert main(["verify", "--quarantine", "--cache-dir", str(tmp_path)]) == 1
        quarantined = cache.entry_path(bad).with_suffix(".corrupt")
        assert quarantined.exists()
        assert main(["prune", "--corrupt", "--cache-dir", str(tmp_path)]) == 0
        assert not quarantined.exists()

    def test_module_dispatcher_routes_cache_commands(self, tmp_path, capsys):
        from repro.runtime.__main__ import main as runtime_main

        cache = ResultCache(str(tmp_path))
        cache.put(cache.key("exp", {}), {"report": "fine"})
        assert runtime_main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 0
        assert runtime_main(["bogus"]) == 2
