"""RunJournal tests: append-only records, last-wins, torn-line tolerance."""

import json

from repro.runtime import JOURNAL_NAME, RunJournal


class TestRoundTrip:
    def test_meta_and_records_load_back(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        journal = RunJournal(path)
        journal.meta(seed=7, quick=True, ids=["a", "b"])
        journal.record("a", status="ok", key="k1", attempts=1, wall_s=0.5)
        journal.record("b", status="failed", key="k2", attempts=3, wall_s=1.25)
        meta, entries = RunJournal.load(path)
        assert meta == {"seed": 7, "quick": True, "ids": ["a", "b"]}
        assert entries["a"]["status"] == "ok"
        assert entries["a"]["key"] == "k1"
        assert entries["b"]["status"] == "failed"
        assert entries["b"]["attempts"] == 3

    def test_later_record_wins(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        journal = RunJournal(path)
        journal.record("a", status="failed", attempts=1)
        journal.record("a", status="ok", key="k", attempts=2)
        _, entries = RunJournal.load(path)
        assert entries["a"]["status"] == "ok"
        assert entries["a"]["attempts"] == 2
        # Append-only: the superseded record is still in the file (audit
        # trail), only the loaded view collapses to last-wins.
        lines = path.read_text().splitlines()
        assert len(lines) == 2

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "run" / JOURNAL_NAME
        RunJournal(path).record("a", status="ok")
        assert path.exists()


class TestCrashTolerance:
    def test_missing_file_is_empty(self, tmp_path):
        meta, entries = RunJournal.load(tmp_path / "nope.jsonl")
        assert meta == {} and entries == {}

    def test_torn_tail_line_is_skipped(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        journal = RunJournal(path)
        journal.record("a", status="ok", key="k")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "task", "task": "b", "sta')  # killed mid-append
        meta, entries = RunJournal.load(path)
        assert list(entries) == ["a"]

    def test_non_dict_and_unknown_lines_are_skipped(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps([1, 2, 3]) + "\n")
            fh.write(json.dumps({"type": "task"}) + "\n")  # no task id
            fh.write(json.dumps({"type": "task", "task": "a", "status": "ok"}) + "\n")
            fh.write("\n")
        _, entries = RunJournal.load(path)
        assert list(entries) == ["a"]

    def test_records_are_one_json_line_each(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        journal = RunJournal(path)
        journal.meta(seed=0)
        journal.record("a", status="ok", wall_s=1.23456789)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)
        assert json.loads(lines[1])["wall_s"] == 1.234568  # rounded for stability
