"""Fingerprint hardening and lint-aware cache invalidation."""

import shutil
from pathlib import Path

import repro
from repro.runtime import cache_key, code_fingerprint, tree_fingerprint

PACKAGE_ROOT = Path(repro.__file__).resolve().parent


def make_tree(root: Path) -> None:
    (root / "pkg").mkdir(parents=True)
    (root / "pkg" / "a.py").write_text("A = 1\n", encoding="utf-8")
    (root / "pkg" / "b.py").write_text("B = 2\n", encoding="utf-8")


class TestTreeFingerprintRobustness:
    def test_broken_symlink_is_skipped(self, tmp_path):
        make_tree(tmp_path)
        baseline = tree_fingerprint(tmp_path)
        link = tmp_path / "pkg" / "ghost.py"
        link.symlink_to(tmp_path / "pkg" / "vanished.py")
        assert not link.exists()
        assert tree_fingerprint(tmp_path) == baseline

    def test_directory_named_like_module_is_skipped(self, tmp_path):
        make_tree(tmp_path)
        baseline = tree_fingerprint(tmp_path)
        (tmp_path / "pkg" / "weird.py").mkdir()
        # Its own *contents* still count, as for any directory.
        assert tree_fingerprint(tmp_path) == baseline

    def test_content_and_path_still_fingerprinted(self, tmp_path):
        make_tree(tmp_path)
        baseline = tree_fingerprint(tmp_path)
        (tmp_path / "pkg" / "a.py").write_text("A = 99\n", encoding="utf-8")
        changed = tree_fingerprint(tmp_path)
        assert changed != baseline
        (tmp_path / "pkg" / "a.py").write_text("A = 1\n", encoding="utf-8")
        assert tree_fingerprint(tmp_path) == baseline
        (tmp_path / "pkg" / "a.py").rename(tmp_path / "pkg" / "c.py")
        assert tree_fingerprint(tmp_path) != baseline


class TestLintRulesInvalidateCache:
    """Editing the analyzer must invalidate cached experiment results.

    The lint rules define which code may run — a rule change can force
    (or reveal) behaviour changes, so cached payloads produced under the
    old tree must not survive it.  ``repro/lint`` lives inside the
    fingerprinted package, which these tests pin down.
    """

    def test_lint_package_is_inside_fingerprinted_tree(self):
        assert (PACKAGE_ROOT / "lint" / "rules.py").is_file()
        assert code_fingerprint("repro")  # importable and hashable

    def test_editing_a_rule_file_changes_fingerprint_and_cache_key(self, tmp_path):
        copy = tmp_path / "repro"
        shutil.copytree(
            PACKAGE_ROOT, copy, ignore=shutil.ignore_patterns("__pycache__", "*.pyc")
        )
        before = tree_fingerprint(copy)
        rule_file = copy / "lint" / "rules.py"
        rule_file.write_text(
            rule_file.read_text(encoding="utf-8") + "\n# tightened rule\n", encoding="utf-8"
        )
        after = tree_fingerprint(copy)
        assert after != before
        assert cache_key("table1", {"seed": 0}, before) != cache_key(
            "table1", {"seed": 0}, after
        )

    def test_every_lint_module_is_covered(self, tmp_path):
        copy = tmp_path / "repro"
        shutil.copytree(
            PACKAGE_ROOT, copy, ignore=shutil.ignore_patterns("__pycache__", "*.pyc")
        )
        before = tree_fingerprint(copy)
        for module in sorted((copy / "lint").glob("*.py")):
            module.write_text(
                module.read_text(encoding="utf-8") + "\n# touched\n", encoding="utf-8"
            )
            changed = tree_fingerprint(copy)
            assert changed != before, f"editing {module.name} did not change the fingerprint"
            before = changed
