"""Executor <-> metrics registry integration: counters mirror outcomes."""

from repro.obs import MetricsRegistry
from repro.runtime import DagExecutor, TaskSpec, TaskStatus


def add(a, b):
    return a + b


def boom():
    raise RuntimeError("injected failure")


def _executor(metrics, jobs=1):
    return DagExecutor(jobs=jobs, backoff_base_s=0.01, backoff_cap_s=0.05, metrics=metrics)


class TestExecutorMetrics:
    def test_ok_tasks_counted_and_observed(self):
        metrics = MetricsRegistry()
        results = _executor(metrics).run(
            [
                TaskSpec(id="a", fn=add, kwargs={"a": 1, "b": 1}),
                TaskSpec(id="b", fn=add, kwargs={"a": 2, "b": 2}),
            ]
        )
        assert all(r.ok for r in results.values())
        assert metrics.counter("tasks_ok_total") == 2
        assert "task_wall_seconds_count 2" in metrics.to_prometheus()

    def test_failures_retries_and_skips_counted(self):
        metrics = MetricsRegistry()
        results = _executor(metrics).run(
            [
                TaskSpec(id="bad", fn=boom, retries=1),
                TaskSpec(id="child", fn=add, kwargs={"a": 0, "b": 0}, deps=("bad",)),
            ]
        )
        assert results["bad"].status is TaskStatus.FAILED
        assert results["child"].status is TaskStatus.SKIPPED
        assert metrics.counter("tasks_failed_total") == 1
        assert metrics.counter("tasks_skipped_total") == 1
        assert metrics.counter("retries_total") == 1

    def test_no_registry_is_fine(self):
        results = DagExecutor(jobs=1).run([TaskSpec(id="a", fn=add, kwargs={"a": 1, "b": 1})])
        assert results["a"].ok
