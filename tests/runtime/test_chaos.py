"""Chaos suite: deterministic fault injection and the failure paths it drills.

Worker functions live at module level so process-pool mode can pickle
them.  Every test that injects faults does so through a seeded
:class:`FaultPlan`, so the suite itself is replayable — a failure here
reproduces with the same seed, which is the whole point of the feature.
"""

import json
import time

import pytest

from repro.runtime import (
    DagExecutor,
    FaultPlan,
    FaultRule,
    InjectedFault,
    ResultCache,
    TaskSpec,
    TaskStatus,
    Telemetry,
    parse_chaos_spec,
)
from repro.runtime.faults import corrupt_file, truncate_file, vanish_file


def add(a, b):
    return a + b


def _executor(jobs=1, *, plan=None, telemetry=None):
    return DagExecutor(
        jobs=jobs,
        backoff_base_s=0.01,
        backoff_cap_s=0.05,
        telemetry=telemetry,
        fault_plan=plan,
    )


class TestFaultPlan:
    def test_same_seed_same_decisions(self):
        a = FaultPlan(7, [FaultRule(match="*", p=0.5)])
        b = FaultPlan(7, [FaultRule(match="*", p=0.5)])
        decisions_a = [(t, n, a.arm(t, n) is not None) for t in "abcdef" for n in range(1, 5)]
        decisions_b = [(t, n, b.arm(t, n) is not None) for t in "abcdef" for n in range(1, 5)]
        assert decisions_a == decisions_b
        assert any(fired for _, _, fired in decisions_a)
        assert not all(fired for _, _, fired in decisions_a)

    def test_different_seed_different_decisions(self):
        rule = [FaultRule(match="*", p=0.5)]
        fires = lambda plan: [  # noqa: E731
            plan.arm(t, n) is not None for t in "abcdefgh" for n in range(1, 6)
        ]
        assert fires(FaultPlan(1, rule)) != fires(FaultPlan(2, rule))

    def test_p_bounds(self):
        never = FaultPlan(3, [FaultRule(match="*", p=0.0)])
        always = FaultPlan(3, [FaultRule(match="*", p=1.0)])
        for task in ("x", "y"):
            for attempt in (1, 2, 3):
                assert never.arm(task, attempt) is None
                assert always.arm(task, attempt) is not None

    def test_max_hits_caps_per_task(self):
        plan = FaultPlan(0, [FaultRule(match="*", p=1.0, max_hits=2)])
        assert plan.arm("t", 1) is not None
        assert plan.arm("t", 2) is not None
        assert plan.arm("t", 3) is None
        # Per task, not global: a different task gets its own budget.
        assert plan.arm("u", 1) is not None

    def test_max_hits_is_order_free(self):
        plan = FaultPlan(0, [FaultRule(match="*", p=1.0, max_hits=1)])
        # Query attempt 3 before attempt 1: the answer must not depend on
        # which attempt was asked about first.
        late_first = plan.arm("t", 3)
        assert late_first is None
        assert plan.arm("t", 1) is not None
        assert plan.arm("t", 3) is None

    def test_match_glob_and_first_rule_wins(self):
        plan = FaultPlan(
            5,
            [
                FaultRule(match="table*", kind="corrupt", p=1.0),
                FaultRule(match="*", kind="raise", p=1.0),
            ],
        )
        assert plan.arm("table1", 1).kind == "corrupt"
        assert plan.arm("figure1", 1).kind == "raise"
        assert plan.arm("figure1", 1).rule == 1

    def test_rejects_empty_rules_and_bad_fields(self):
        with pytest.raises(ValueError):
            FaultPlan(0, [])
        with pytest.raises(ValueError):
            FaultRule(kind="meteor")
        with pytest.raises(ValueError):
            FaultRule(p=1.5)
        with pytest.raises(ValueError):
            FaultRule(max_hits=0)
        with pytest.raises(ValueError):
            FaultRule(exit_code=0)


class TestParseChaosSpec:
    def test_seed_only_gets_default_rule(self):
        plan = parse_chaos_spec("7")
        assert plan.seed == 7
        assert len(plan.rules) == 1
        assert plan.rules[0].kind == "raise"
        assert plan.rules[0].p == pytest.approx(0.25)

    def test_shorthand_match_kind(self):
        plan = parse_chaos_spec("1:table2=exit")
        assert plan.rules[0].match == "table2"
        assert plan.rules[0].kind == "exit"

    def test_full_grammar(self):
        plan = parse_chaos_spec(
            "9:match=table*,kind=raise,p=0.5,max_hits=2;figure*=hang,hang_s=5"
        )
        assert len(plan.rules) == 2
        first, second = plan.rules
        assert (first.match, first.kind, first.p, first.max_hits) == ("table*", "raise", 0.5, 2)
        assert (second.match, second.kind, second.hang_s) == ("figure*", "hang", 5.0)

    @pytest.mark.parametrize(
        "spec", ["x", "x:a=raise", "1:kind=meteor", "1:p=banana", "1:noequals-and-no-shorthand"]
    )
    def test_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            parse_chaos_spec(spec)


class TestSerialChaos:
    def test_raise_fault_recovers_through_retries(self):
        telemetry = Telemetry()
        plan = FaultPlan(0, [FaultRule(match="*", kind="raise", p=1.0, max_hits=2)])
        results = _executor(plan=plan, telemetry=telemetry).run(
            [TaskSpec(id="t", fn=add, kwargs={"a": 1, "b": 2}, retries=2)]
        )
        assert results["t"].ok
        assert results["t"].value == 3
        assert results["t"].attempts == 3
        assert results["t"].faults == 2
        kinds = [r["kind"] for r in telemetry.records if r["type"] == "event"]
        assert kinds.count("fault_injected") == 2
        assert kinds.count("retry") == 2
        retries = [r for r in telemetry.records if r.get("kind") == "retry"]
        assert all("InjectedFault" in r["error"] for r in retries)

    def test_raise_without_retries_fails_and_skips_dependents(self):
        plan = FaultPlan(0, [FaultRule(match="parent", kind="raise", p=1.0)])
        results = _executor(plan=plan).run(
            [
                TaskSpec(id="parent", fn=add, kwargs={"a": 1, "b": 1}),
                TaskSpec(id="child", fn=add, kwargs={"a": 2, "b": 2}, deps=("parent",)),
                TaskSpec(id="bystander", fn=add, kwargs={"a": 3, "b": 3}),
            ]
        )
        assert results["parent"].status is TaskStatus.FAILED
        assert "InjectedFault" in results["parent"].error
        assert results["child"].status is TaskStatus.SKIPPED
        assert results["bystander"].ok

    def test_hang_fault_times_out_then_recovers(self):
        plan = FaultPlan(
            0, [FaultRule(match="*", kind="hang", p=1.0, max_hits=1, hang_s=0.3)]
        )
        results = _executor(plan=plan).run(
            [TaskSpec(id="t", fn=add, kwargs={"a": 1, "b": 2}, timeout=0.05, retries=1)]
        )
        assert results["t"].ok
        assert results["t"].attempts == 2
        assert results["t"].faults == 1

    def test_hang_fault_without_retries_is_timeout(self):
        plan = FaultPlan(0, [FaultRule(match="*", kind="hang", p=1.0, hang_s=0.3)])
        results = _executor(plan=plan).run(
            [TaskSpec(id="t", fn=add, kwargs={"a": 1, "b": 2}, timeout=0.05)]
        )
        assert results["t"].status is TaskStatus.TIMEOUT

    def test_corrupt_fault_returns_garbage_without_running_fn(self):
        plan = FaultPlan(4, [FaultRule(match="*", kind="corrupt", p=1.0)])
        results = _executor(plan=plan).run(
            [TaskSpec(id="t", fn=add, kwargs={"a": 1, "b": 2})]
        )
        # The executor sees "success" — catching this is the caller's
        # payload validation's job, which is exactly what it models.
        assert results["t"].ok
        assert results["t"].value == {"__chaos_corrupt__": "chaos:4:0:t:1"}

    def test_same_seed_reproduces_the_exact_event_sequence(self):
        def run_once():
            telemetry = Telemetry(clock=lambda: 0.0)
            plan = FaultPlan(11, [FaultRule(match="*", kind="raise", p=0.6)])
            _executor(plan=plan, telemetry=telemetry).run(
                [
                    TaskSpec(id=f"t{i}", fn=add, kwargs={"a": i, "b": i}, retries=3)
                    for i in range(4)
                ]
            )
            return [
                (r["task"], r["attempt"], r["fault"])
                for r in telemetry.records
                if r.get("kind") == "fault_injected"
            ]

        first, second = run_once(), run_once()
        assert first, "seed 11 injected nothing; test is vacuous"
        assert first == second


class TestPoolChaos:
    def test_raise_fault_recovers_in_pool_mode(self):
        plan = FaultPlan(0, [FaultRule(match="*", kind="raise", p=1.0, max_hits=1)])
        results = _executor(jobs=2, plan=plan).run(
            [TaskSpec(id=f"t{i}", fn=add, kwargs={"a": i, "b": i}, retries=1) for i in range(3)]
        )
        for i in range(3):
            assert results[f"t{i}"].ok
            assert results[f"t{i}"].value == 2 * i
            assert results[f"t{i}"].attempts == 2

    def test_exit_fault_breaks_pool_and_batch_still_completes(self):
        telemetry = Telemetry()
        plan = FaultPlan(
            0, [FaultRule(match="die", kind="exit", p=1.0, max_hits=1, exit_code=70)]
        )
        # Bystanders get a retry budget too: an attempt in flight when a
        # sibling kills the worker pool dies with it and is charged.
        results = _executor(jobs=2, plan=plan, telemetry=telemetry).run(
            [
                TaskSpec(id="die", fn=add, kwargs={"a": 1, "b": 1}, retries=1),
                TaskSpec(id="ok1", fn=add, kwargs={"a": 2, "b": 2}, retries=1),
                TaskSpec(id="ok2", fn=add, kwargs={"a": 3, "b": 3}, retries=1),
            ]
        )
        assert results["die"].ok, "worker death was not retried after pool rebuild"
        assert results["die"].attempts == 2
        assert results["ok1"].value == 4
        assert results["ok2"].value == 6
        rebuilds = [r for r in telemetry.records if r.get("kind") == "pool_rebuild"]
        assert rebuilds and rebuilds[0]["reason"] == "broken"

    def test_exit_fault_without_retries_reports_failure(self):
        plan = FaultPlan(0, [FaultRule(match="die", kind="exit", p=1.0)])
        results = _executor(jobs=2, plan=plan).run(
            [
                TaskSpec(id="die", fn=add, kwargs={"a": 1, "b": 1}),
                TaskSpec(id="ok", fn=add, kwargs={"a": 2, "b": 2}, retries=1),
            ]
        )
        assert results["die"].status is TaskStatus.FAILED
        assert "worker process died" in results["die"].error
        assert results["ok"].ok

    def test_hang_fault_kills_worker_and_recovers(self):
        start = time.monotonic()
        plan = FaultPlan(
            0, [FaultRule(match="*", kind="hang", p=1.0, max_hits=1, hang_s=30.0)]
        )
        results = _executor(jobs=2, plan=plan).run(
            [TaskSpec(id="t", fn=add, kwargs={"a": 1, "b": 2}, timeout=0.3, retries=1)]
        )
        assert results["t"].ok
        assert results["t"].value == 3
        assert time.monotonic() - start < 20.0, "hung worker was not killed"

    def test_pool_and_serial_inject_identical_decisions(self):
        tasks = lambda: [  # noqa: E731
            TaskSpec(id=f"t{i}", fn=add, kwargs={"a": i, "b": i}, retries=2)
            for i in range(4)
        ]

        def injected(jobs):
            telemetry = Telemetry()
            plan = FaultPlan(11, [FaultRule(match="*", kind="raise", p=0.6)])
            _executor(jobs=jobs, plan=plan, telemetry=telemetry).run(tasks())
            return {
                (r["task"], r["attempt"], r["fault"])
                for r in telemetry.records
                if r.get("kind") == "fault_injected"
            }

        serial, pooled = injected(1), injected(2)
        assert serial, "seed 11 injected nothing; test is vacuous"
        assert serial == pooled


class TestFilesystemChaos:
    def _seeded_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"), fingerprint="fp")
        key = cache.key("exp", {"seed": 0})
        cache.put(key, {"report": "fine", "n": 1})
        return cache, key

    def test_truncated_entry_is_quarantined_miss(self, tmp_path):
        cache, key = self._seeded_cache(tmp_path)
        truncate_file(cache.entry_path(key))
        assert cache.get(key) is None
        assert cache.entry_path(key).with_suffix(".corrupt").exists()

    def test_bitflipped_entry_is_quarantined_miss(self, tmp_path):
        cache, key = self._seeded_cache(tmp_path)
        corrupt_file(cache.entry_path(key), seed=1)
        assert cache.get(key) is None
        assert cache.entry_path(key).with_suffix(".corrupt").exists()

    def test_vanished_entry_is_plain_miss(self, tmp_path):
        cache, key = self._seeded_cache(tmp_path)
        vanish_file(cache.entry_path(key))
        assert cache.get(key) is None
        assert not cache.entry_path(key).with_suffix(".corrupt").exists()

    def test_corrupt_helper_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        a.write_bytes(b"0123456789")
        b.write_bytes(b"0123456789")
        corrupt_file(a, seed=3)
        corrupt_file(b, seed=3)
        assert a.read_bytes() == b.read_bytes() != b"0123456789"

    def test_get_or_compute_recomputes_after_damage(self, tmp_path):
        cache, key = self._seeded_cache(tmp_path)
        corrupt_file(cache.entry_path(key), seed=0)
        payload, hit = cache.get_or_compute(key, lambda: {"report": "fresh"})
        assert hit is False
        assert payload == {"report": "fresh"}
        assert cache.get(key) == {"report": "fresh"}


class TestInjectedFaultType:
    def test_injected_fault_is_a_runtime_error(self):
        plan = FaultPlan(0, [FaultRule(match="*", kind="raise", p=1.0)])
        armed = plan.arm("t", 1)
        with pytest.raises(InjectedFault):
            armed.wrap(add)(a=1, b=2)

    def test_fault_wrapper_survives_json_roundtrip_of_token(self):
        plan = FaultPlan(0, [FaultRule(match="*", kind="corrupt", p=1.0)])
        armed = plan.arm("t", 2)
        token = armed.wrap(add)(a=1, b=2)["__chaos_corrupt__"]
        assert json.loads(json.dumps(token)) == token == "chaos:0:0:t:2"
