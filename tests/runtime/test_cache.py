"""Result-cache tests: key scheme, round-trips, invalidation, corruption."""

import json

import pytest

from repro.runtime import ResultCache, cache_key, code_fingerprint, tree_fingerprint


class TestCacheKey:
    def test_deterministic(self):
        a = cache_key("figure1", {"seed": 0}, "fp")
        b = cache_key("figure1", {"seed": 0}, "fp")
        assert a == b
        assert len(a) == 64

    def test_kwarg_order_is_canonical(self):
        assert cache_key("e", {"a": 1, "b": 2}, "fp") == cache_key(
            "e", {"b": 2, "a": 1}, "fp"
        )

    @pytest.mark.parametrize(
        "other",
        [
            ("figure2", {"seed": 0}, "fp"),
            ("figure1", {"seed": 1}, "fp"),
            ("figure1", {"seed": 0, "n_jobs": 100}, "fp"),
            ("figure1", {"seed": 0}, "fp2"),
        ],
        ids=["experiment", "seed", "kwargs", "fingerprint"],
    )
    def test_any_input_change_changes_key(self, other):
        assert cache_key("figure1", {"seed": 0}, "fp") != cache_key(*other)


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="fp")
        key = cache.key("figure1", {"seed": 0})
        assert cache.get(key) is None
        payload = {"report": "hello", "claims": [{"holds": True}]}
        path = cache.put(key, payload, meta={"seed": 0})
        assert path.exists()
        assert cache.get(key) == payload
        assert key in cache

    def test_sharded_layout(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="fp")
        key = cache.key("figure1", {"seed": 0})
        path = cache.put(key, {"report": ""})
        assert path.parent.name == key[:2]
        assert path.name == f"{key}.json"

    def test_fingerprint_change_invalidates(self, tmp_path):
        old = ResultCache(str(tmp_path), fingerprint="fp-old")
        key = old.key("figure1", {"seed": 0})
        old.put(key, {"report": "stale"})
        new = ResultCache(str(tmp_path), fingerprint="fp-new")
        assert new.get(new.key("figure1", {"seed": 0})) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="fp")
        key = cache.key("figure1", {"seed": 0})
        path = cache.put(key, {"report": "x"})
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None

    def test_version_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="fp")
        key = cache.key("figure1", {"seed": 0})
        path = cache.put(key, {"report": "x"})
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["version"] = -1
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert cache.get(key) is None

    def test_default_fingerprint_is_code_fingerprint(self, tmp_path):
        assert ResultCache(str(tmp_path)).fingerprint == code_fingerprint()


class TestFingerprint:
    def test_stable_and_sensitive(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b.py").write_text("y = 2\n")
        fp1 = tree_fingerprint(tmp_path)
        assert fp1 == tree_fingerprint(tmp_path)
        (tmp_path / "a.py").write_text("x = 2\n")
        assert tree_fingerprint(tmp_path) != fp1

    def test_new_file_changes_fingerprint(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        fp1 = tree_fingerprint(tmp_path)
        (tmp_path / "c.py").write_text("")
        assert tree_fingerprint(tmp_path) != fp1

    def test_non_python_files_ignored(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        fp1 = tree_fingerprint(tmp_path)
        (tmp_path / "notes.txt").write_text("irrelevant")
        assert tree_fingerprint(tmp_path) == fp1

    def test_code_fingerprint_covers_repro(self):
        fp = code_fingerprint("repro")
        assert len(fp) == 64
        assert fp == code_fingerprint("repro")
