"""Executor tests: DAG ordering, retries, timeouts, graceful degradation.

The worker functions live at module level so the process-pool mode can
pickle them; flaky behaviour is injected through a counter file shared
across processes.
"""

import os
import time

import pytest

from repro.runtime import DagExecutor, TaskSpec, TaskStatus, Telemetry, toposort


def add(a, b):
    return a + b


def boom():
    raise RuntimeError("injected failure")


def flaky(counter_path, fail_times):
    """Fail the first *fail_times* invocations, then succeed."""
    count = 0
    if os.path.exists(counter_path):
        with open(counter_path) as fh:
            count = int(fh.read())
    with open(counter_path, "w") as fh:
        fh.write(str(count + 1))
    if count < fail_times:
        raise RuntimeError(f"flaky attempt {count}")
    return "recovered"


def snooze(seconds):
    time.sleep(seconds)
    return "slept"


def fail_after(delay):
    time.sleep(delay)
    raise RuntimeError("deliberate late failure")


def _executor(jobs=1):
    # Tiny backoff so retry tests stay fast.
    return DagExecutor(jobs=jobs, backoff_base_s=0.01, backoff_cap_s=0.05)


class TestToposort:
    def test_preserves_order_without_deps(self):
        tasks = [TaskSpec(id=i, fn=add) for i in "abc"]
        assert [t.id for t in toposort(tasks)] == ["a", "b", "c"]

    def test_orders_dependencies_first(self):
        tasks = [
            TaskSpec(id="c", fn=add, deps=("a", "b")),
            TaskSpec(id="b", fn=add, deps=("a",)),
            TaskSpec(id="a", fn=add),
        ]
        assert [t.id for t in toposort(tasks)] == ["a", "b", "c"]

    @pytest.mark.parametrize(
        "tasks",
        [
            [TaskSpec(id="a", fn=add), TaskSpec(id="a", fn=add)],
            [TaskSpec(id="a", fn=add, deps=("ghost",))],
            [
                TaskSpec(id="a", fn=add, deps=("b",)),
                TaskSpec(id="b", fn=add, deps=("a",)),
            ],
        ],
        ids=["duplicate", "unknown-dep", "cycle"],
    )
    def test_rejects_bad_graphs(self, tasks):
        with pytest.raises(ValueError):
            toposort(tasks)

    def test_rejects_self_dependency(self):
        with pytest.raises(ValueError):
            toposort([TaskSpec(id="a", fn=add, deps=("a",))])


class TestSerialMode:
    def test_runs_and_returns_values(self):
        results = _executor().run(
            [TaskSpec(id="sum", fn=add, kwargs={"a": 2, "b": 3})]
        )
        assert results["sum"].ok
        assert results["sum"].value == 5
        assert results["sum"].attempts == 1
        assert results["sum"].wall_s >= 0

    def test_failure_does_not_abort_batch(self):
        results = _executor().run(
            [
                TaskSpec(id="bad", fn=boom),
                TaskSpec(id="good", fn=add, kwargs={"a": 1, "b": 1}),
            ]
        )
        assert results["bad"].status is TaskStatus.FAILED
        assert "injected failure" in results["bad"].error
        assert results["good"].ok

    def test_dependents_of_failure_are_skipped(self):
        results = _executor().run(
            [
                TaskSpec(id="bad", fn=boom),
                TaskSpec(id="child", fn=add, kwargs={"a": 1, "b": 1}, deps=("bad",)),
                TaskSpec(id="grandchild", fn=add, kwargs={"a": 1, "b": 1}, deps=("child",)),
                TaskSpec(id="other", fn=add, kwargs={"a": 0, "b": 0}),
            ]
        )
        assert results["child"].status is TaskStatus.SKIPPED
        assert results["grandchild"].status is TaskStatus.SKIPPED
        assert results["other"].ok

    def test_retries_recover_flaky_task(self, tmp_path):
        counter = str(tmp_path / "count")
        results = _executor().run(
            [TaskSpec(id="flaky", fn=flaky, kwargs={"counter_path": counter, "fail_times": 2}, retries=2)]
        )
        assert results["flaky"].ok
        assert results["flaky"].value == "recovered"
        assert results["flaky"].attempts == 3

    def test_retries_exhausted_reports_failure(self, tmp_path):
        counter = str(tmp_path / "count")
        telemetry = Telemetry()
        executor = DagExecutor(jobs=1, backoff_base_s=0.01, telemetry=telemetry)
        results = executor.run(
            [TaskSpec(id="flaky", fn=flaky, kwargs={"counter_path": counter, "fail_times": 5}, retries=1)]
        )
        assert results["flaky"].status is TaskStatus.FAILED
        assert results["flaky"].attempts == 2
        retry_events = [r for r in telemetry.records if r.get("kind") == "retry"]
        assert len(retry_events) == 1

    def test_inline_timeout_detected_post_hoc(self):
        results = _executor().run(
            [TaskSpec(id="slow", fn=snooze, kwargs={"seconds": 0.2}, timeout=0.05)]
        )
        assert results["slow"].status is TaskStatus.TIMEOUT
        assert results["slow"].value is None

    def test_backoff_is_deterministic(self):
        ex = _executor()
        task = TaskSpec(id="t", fn=add)
        assert ex._backoff_delay(task, 1) == ex._backoff_delay(task, 1)
        assert ex._backoff_delay(task, 1) != ex._backoff_delay(task, 2)


class TestProcessPoolMode:
    def test_parallel_values_match_serial(self):
        tasks = [
            TaskSpec(id=f"t{i}", fn=add, kwargs={"a": i, "b": i}) for i in range(6)
        ]
        serial = _executor(jobs=1).run(tasks)
        parallel = _executor(jobs=3).run(tasks)
        assert {k: v.value for k, v in serial.items()} == {
            k: v.value for k, v in parallel.items()
        }

    def test_failure_and_retry_across_processes(self, tmp_path):
        counter = str(tmp_path / "count")
        results = _executor(jobs=2).run(
            [
                TaskSpec(id="flaky", fn=flaky, kwargs={"counter_path": counter, "fail_times": 1}, retries=1),
                TaskSpec(id="bad", fn=boom),
                TaskSpec(id="good", fn=add, kwargs={"a": 4, "b": 5}),
            ]
        )
        assert results["flaky"].ok
        assert results["flaky"].attempts == 2
        assert results["bad"].status is TaskStatus.FAILED
        assert results["good"].value == 9

    def test_timeout_kills_worker_and_batch_completes(self):
        start = time.monotonic()
        results = _executor(jobs=2).run(
            [
                TaskSpec(id="hang", fn=snooze, kwargs={"seconds": 30.0}, timeout=0.3),
                TaskSpec(id="quick", fn=add, kwargs={"a": 1, "b": 2}),
            ]
        )
        elapsed = time.monotonic() - start
        assert results["hang"].status is TaskStatus.TIMEOUT
        assert results["quick"].value == 3
        assert elapsed < 20.0, "timed-out worker was not killed"

    def test_failed_task_billed_in_function_wall_not_queue_wait(self):
        # Both workers are pinned by sleepers, so the failing task sits
        # in the pool queue well past its own runtime.  Its wall_s must
        # reflect the ~0.05s it actually ran, not the ~0.5s of waiting.
        results = _executor(jobs=2).run(
            [
                TaskSpec(id="busy1", fn=snooze, kwargs={"seconds": 0.5}),
                TaskSpec(id="busy2", fn=snooze, kwargs={"seconds": 0.5}),
                TaskSpec(id="late", fn=fail_after, kwargs={"delay": 0.05}),
            ]
        )
        assert results["late"].status is TaskStatus.FAILED
        assert "deliberate late failure" in results["late"].error
        assert results["late"].wall_s < 0.4, (
            f"failure billed {results['late'].wall_s:.2f}s: queue wait leaked into wall time"
        )

    def test_dag_dependency_feeds_downstream(self):
        results = _executor(jobs=2).run(
            [
                TaskSpec(id="a", fn=add, kwargs={"a": 1, "b": 1}),
                TaskSpec(id="b", fn=add, kwargs={"a": 2, "b": 2}, deps=("a",)),
            ]
        )
        assert results["a"].ok and results["b"].ok


class TestRunAttempt:
    def test_success_contract(self):
        from repro.runtime.executor import _run_attempt

        ok, value, wall, _rss = _run_attempt(add, {"a": 2, "b": 3})
        assert (ok, value) == (True, 5)
        assert wall >= 0

    def test_failure_returns_typed_message_and_wall(self):
        from repro.runtime.executor import _run_attempt

        ok, value, wall, _rss = _run_attempt(fail_after, {"delay": 0.05})
        assert ok is False
        assert value == "RuntimeError: deliberate late failure"
        assert wall >= 0.05


class TestValidation:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            DagExecutor(jobs=0)

    def test_rejects_bad_task_fields(self):
        with pytest.raises(ValueError):
            TaskSpec(id="", fn=add)
        with pytest.raises(ValueError):
            TaskSpec(id="t", fn=add, retries=-1)
        with pytest.raises(ValueError):
            TaskSpec(id="t", fn=add, timeout=0)
