"""Telemetry tests: record shapes, JSONL serialization, summaries."""

import json

from repro.runtime import Telemetry, summarize


def _fixed_clock():
    return 1000.0


class TestRecords:
    def test_span_record_shape(self):
        t = Telemetry(clock=_fixed_clock)
        rec = t.span("figure1", status="ok", wall_s=1.25, cache_hit=False, retries=1, peak_rss_kb=2048)
        assert rec["type"] == "span"
        assert rec["task"] == "figure1"
        assert rec["status"] == "ok"
        assert rec["wall_s"] == 1.25
        assert rec["cache_hit"] is False
        assert rec["retries"] == 1
        assert rec["peak_rss_kb"] == 2048
        assert rec["ts"] == 1000.0

    def test_event_and_metric_records(self):
        t = Telemetry(clock=_fixed_clock)
        t.event("retry", task="x", attempt=1)
        t.metric("cache_hits", 3)
        kinds = [(r["type"], r.get("kind") or r.get("name")) for r in t.records]
        assert kinds == [("event", "retry"), ("metric", "cache_hits")]

    def test_spans_property_filters(self):
        t = Telemetry(clock=_fixed_clock)
        t.event("noise")
        t.span("a", status="ok", wall_s=0.1, cache_hit=True, retries=0)
        assert [s["task"] for s in t.spans] == ["a"]


class TestWrite:
    def test_writes_valid_jsonl_with_header(self, tmp_path):
        t = Telemetry(clock=_fixed_clock)
        t.span("a", status="ok", wall_s=0.5, cache_hit=True, retries=0)
        t.metric("cache_hits", 1)
        path = tmp_path / "trace.jsonl"
        t.write(str(path))
        lines = path.read_text(encoding="utf-8").splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["type"] == "header"
        assert records[0]["schema"] >= 1
        assert [r["type"] for r in records[1:]] == ["span", "metric"]


class TestSummary:
    def test_empty(self):
        assert "no tasks" in summarize([])

    def test_digest_mentions_counts(self):
        t = Telemetry(clock=_fixed_clock)
        t.span("a", status="ok", wall_s=1.0, cache_hit=True, retries=0)
        t.span("b", status="failed", wall_s=2.0, cache_hit=False, retries=2, peak_rss_kb=4096)
        digest = t.summary()
        assert "2 task(s)" in digest
        assert "1 failed" in digest and "1 ok" in digest
        assert "cache 1 hit / 1 miss" in digest
        assert "2 retrie(s)" in digest
        assert "3.0s total" in digest
