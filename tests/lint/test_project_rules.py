"""End-to-end tests for the interprocedural rules (REP008–REP012).

``tests/lint/cases/`` holds miniature service-shaped modules seeded
with true positives; this file copies that tree out of the repository
(so the repo's own pyproject excludes never interfere) and asserts
every seeded finding lands at its marked line — and nothing else is
flagged.  The synthetic trees below then pin down the individual
mechanisms: sanitizer modules, sink-param propagation, entry locksets,
pool-kind discrimination, the ``*_io_lock`` convention, inline
suppressions, and enable/disable config.
"""

import shutil
import textwrap
from pathlib import Path

from repro.lint.config import LintConfig
from repro.lint.engine import lint_paths

CASES = Path(__file__).resolve().parent / "cases"

PROJECT_CODES = ("REP008", "REP009", "REP010", "REP011", "REP012")


def _marker_line(path, marker):
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if marker in line:
            return lineno
    raise AssertionError(f"marker {marker!r} not found in {path}")


def _lint_files(tmp_path, files, config=None):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    findings, _ = lint_paths([tmp_path], config=config or LintConfig())
    return findings


class TestSeededCases:
    def test_true_positives_found_at_marked_lines_and_nothing_else(self, tmp_path):
        tree = tmp_path / "cases"
        shutil.copytree(CASES, tree)
        findings, scanned = lint_paths([tree], config=LintConfig())
        assert scanned == 3
        located = {(Path(f.path).name, f.line, f.code) for f in findings}
        # Exact set equality also proves the clean counterparts
        # (mark_done, submit_clean, submit_pinned) are NOT flagged.
        assert located == {
            (
                "miniapp.py",
                _marker_line(tree / "miniapp.py", "seeded REP008"),
                "REP008",
            ),
            (
                "miniapp.py",
                _marker_line(tree / "miniapp.py", "seeded REP009"),
                "REP009",
            ),
            (
                "minimodel.py",
                _marker_line(tree / "minimodel.py", "seeded REP002"),
                "REP002",
            ),
            (
                "minimodel.py",
                _marker_line(tree / "minimodel.py", "seeded REP008"),
                "REP008",
            ),
            (
                "ministore.py",
                _marker_line(tree / "ministore.py", "seeded REP010"),
                "REP010",
            ),
        }

    def test_enable_and_disable_config_apply_to_project_rules(self, tmp_path):
        tree = tmp_path / "cases"
        shutil.copytree(CASES, tree)
        only_rep010, _ = lint_paths(
            [tree], config=LintConfig(enable=frozenset({"REP010"}))
        )
        assert sorted(f.code for f in only_rep010) == ["REP010"]
        disabled, _ = lint_paths(
            [tree], config=LintConfig(disable=frozenset(PROJECT_CODES))
        )
        assert [f for f in disabled if f.code in PROJECT_CODES] == []


class TestTaintRules:
    def test_sanitizer_module_stops_taint_and_impurity(self, tmp_path):
        findings = _lint_files(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/obs/__init__.py": """\
                    import time


                    def utc():
                        return time.time()  # repro-lint: disable=REP003
                    """,
                "app.py": """\
                    from repro.obs import utc


                    class ResultCache:
                        def key(self, experiment, kwargs):
                            return (experiment, tuple(sorted(kwargs)))

                        def get_or_compute(self, key, compute):
                            return compute()


                    def submit(cache: ResultCache):
                        return cache.key("analysis", {"stamp": utc()})


                    def cached(cache: ResultCache):
                        return cache.get_or_compute("analysis:v1", utc)
                    """,
            },
        )
        assert [f for f in findings if f.code in ("REP008", "REP009")] == []

    def test_unsanitized_helper_is_flagged(self, tmp_path):
        # Same shape as above, but the clock helper lives in a plain
        # module — both the tainted key and the impure callable fire.
        findings = _lint_files(
            tmp_path,
            {
                "clockish.py": """\
                    import time


                    def utc():
                        return time.time()  # repro-lint: disable=REP003
                    """,
                "app.py": """\
                    from clockish import utc


                    class ResultCache:
                        def key(self, experiment, kwargs):
                            return (experiment, tuple(sorted(kwargs)))

                        def get_or_compute(self, key, compute):
                            return compute()


                    def submit(cache: ResultCache):
                        return cache.key("analysis", {"stamp": utc()})


                    def cached(cache: ResultCache):
                        return cache.get_or_compute("analysis:v1", utc)
                    """,
            },
        )
        assert sorted(f.code for f in findings) == ["REP008", "REP009"]

    def test_taskspec_sink_param_reports_in_the_tainting_caller(self, tmp_path):
        # ``build`` passes its parameter straight into TaskSpec kwargs,
        # so it becomes a sink-param function; the finding lands in
        # ``submit``, the function that actually introduces the clock.
        findings = _lint_files(
            tmp_path,
            {
                "flow.py": """\
                    import time

                    from repro.runtime import TaskSpec


                    def build(kwargs):
                        return TaskSpec(id="t", fn=len, kwargs=kwargs)


                    def submit():
                        stamp = time.time()  # repro-lint: disable=REP003
                        return build({"stamp": stamp})  # tainted call
                    """,
            },
        )
        [finding] = [f for f in findings if f.code == "REP008"]
        assert finding.line == _marker_line(tmp_path / "flow.py", "tainted call")
        assert "via" in finding.message
        assert "time.time" in finding.message

    def test_environment_read_taints_fingerprint_input(self, tmp_path):
        findings = _lint_files(
            tmp_path,
            {
                "fp.py": """\
                    import os

                    from repro.runtime.fingerprint import tree_fingerprint


                    def stamp(tree):
                        host = os.environ["HOSTNAME"]
                        return tree_fingerprint({"tree": tree, "host": host})  # tainted
                    """,
            },
        )
        [finding] = [f for f in findings if f.code == "REP008"]
        assert finding.line == _marker_line(tmp_path / "fp.py", "# tainted")
        assert "os.environ" in finding.message


class TestConcurrencyRules:
    def test_helper_called_only_under_lock_is_not_flagged(self, tmp_path):
        # ``_note`` mutates shared state with no lexical lock, but every
        # thread-reachable call site holds ``_lock`` — the entry-lockset
        # meet proves it guarded.
        findings = _lint_files(
            tmp_path,
            {
                "guarded.py": """\
                    import threading
                    from concurrent.futures import ThreadPoolExecutor


                    class Store:
                        def __init__(self):
                            self._lock = threading.Lock()
                            self.jobs = {}

                        def start(self):
                            pool = ThreadPoolExecutor(max_workers=2)
                            pool.submit(self.work)

                        def work(self):
                            with self._lock:
                                self._note()

                        def _note(self):
                            self.jobs["k"] = 1
                    """,
            },
        )
        assert [f for f in findings if f.code == "REP010"] == []

    def test_process_pools_are_not_thread_entries(self, tmp_path):
        # Separate address spaces share no memory: the same unguarded
        # mutation that REP010 flags under a thread pool is fine here.
        findings = _lint_files(
            tmp_path,
            {
                "procs.py": """\
                    import threading
                    from concurrent.futures import ProcessPoolExecutor


                    class Store:
                        def __init__(self):
                            self._lock = threading.Lock()
                            self.jobs = {}

                        def start(self, job_id):
                            pool = ProcessPoolExecutor(max_workers=2)
                            pool.submit(self.mark, job_id)

                        def mark(self, job_id):
                            self.jobs[job_id] = "running"
                    """,
            },
        )
        assert [f for f in findings if f.code == "REP010"] == []

    def test_lock_order_inversion_across_functions(self, tmp_path):
        # One order is lexical, the other goes through a call: only the
        # interprocedural acquires() closure can see the two-cycle.
        findings = _lint_files(
            tmp_path,
            {
                "locks.py": """\
                    import threading

                    _a = threading.Lock()
                    _b = threading.Lock()


                    def take_b():
                        with _b:
                            return 1


                    def forward():
                        with _a:
                            return take_b()


                    def backward():
                        with _b:
                            with _a:
                                return 2
                    """,
            },
        )
        [finding] = [f for f in findings if f.code == "REP011"]
        assert "lock order inversion" in finding.message
        assert "locks._a" in finding.message
        assert "locks._b" in finding.message

    def test_blocking_under_lock_transitive_and_io_lock_exempt(self, tmp_path):
        findings = _lint_files(
            tmp_path,
            {
                "io_paths.py": """\
                    import threading

                    _lock = threading.Lock()
                    _journal_io_lock = threading.Lock()


                    def persist(text):
                        with open("journal.log", "a") as fh:
                            fh.write(text)


                    def bad(text):
                        with _lock:
                            persist(text)  # blocks under a plain lock


                    def good(text):
                        with _journal_io_lock:
                            persist(text)
                    """,
            },
        )
        [finding] = [f for f in findings if f.code == "REP012"]
        assert finding.line == _marker_line(
            tmp_path / "io_paths.py", "blocks under a plain lock"
        )
        assert "persist" in finding.message
        assert "open" in finding.message


class TestSuppressions:
    def test_inline_disable_silences_a_project_rule(self, tmp_path):
        findings = _lint_files(
            tmp_path,
            {
                "store.py": """\
                    import threading
                    from concurrent.futures import ThreadPoolExecutor


                    class Store:
                        def __init__(self):
                            self._lock = threading.Lock()
                            self.jobs = {}

                        def start(self, job_id):
                            pool = ThreadPoolExecutor(max_workers=2)
                            pool.submit(self.mark, job_id)

                        def mark(self, job_id):
                            self.jobs[job_id] = "x"  # repro-lint: disable=REP010
                    """,
            },
        )
        assert [f for f in findings if f.code == "REP010"] == []

    def test_per_rule_path_exclusion_applies_at_report_time(self, tmp_path):
        tree = tmp_path / "cases"
        shutil.copytree(CASES, tree)
        config = LintConfig(
            per_rule_exclude={"REP010": ("*/ministore.py",)},
        )
        findings, _ = lint_paths([tree], config=config)
        assert [f for f in findings if f.code == "REP010"] == []
        # The other seeded findings still land: the exclusion is
        # per-rule, not per-file.
        assert sorted(f.code for f in findings) == [
            "REP002",
            "REP008",
            "REP008",
            "REP009",
        ]
