"""Unit tests for the whole-program index (:mod:`repro.lint.graph`).

The interprocedural rules are only as good as the call graph under
them, so the resolution machinery gets direct coverage: package-aware
module naming, aliased imports, ``from x import y as z`` re-export
chains, call-graph cycles, typed attribute chains, and the
lock/access collection the concurrency rules consume.
"""

import ast
import json
import textwrap

from repro.lint.graph import ProjectIndex, module_name_for


def _write(tmp_path, files):
    paths = {}
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        paths[rel] = path
    return paths


def _index(tmp_path, files):
    paths = _write(tmp_path, files)
    pairs = [
        (str(path), ast.parse(path.read_text(encoding="utf-8"), filename=str(path)))
        for path in paths.values()
    ]
    return ProjectIndex.build(pairs)


class TestModuleNameFor:
    def test_package_layout(self, tmp_path):
        _write(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/sub/__init__.py": "",
                "pkg/sub/mod.py": "x = 1\n",
            },
        )
        assert module_name_for(tmp_path / "pkg/sub/mod.py") == "pkg.sub.mod"
        assert module_name_for(tmp_path / "pkg/sub/__init__.py") == "pkg.sub"
        assert module_name_for(tmp_path / "pkg/__init__.py") == "pkg"

    def test_file_outside_any_package_is_its_stem(self, tmp_path):
        _write(tmp_path, {"solo.py": "x = 1\n"})
        assert module_name_for(tmp_path / "solo.py") == "solo"


class TestImportResolution:
    def test_aliased_module_import(self, tmp_path):
        index = _index(
            tmp_path,
            {
                "helpers.py": """\
                    def work():
                        return 1
                    """,
                "app.py": """\
                    import helpers as h


                    def caller():
                        return h.work()
                    """,
            },
        )
        assert set(index.project_callees("app.caller")) == {"helpers.work"}

    def test_from_import_as_reexport_chain(self, tmp_path):
        index = _index(
            tmp_path,
            {
                "core.py": """\
                    def work():
                        return 1
                    """,
                "api.py": "from core import work as run\n",
                "app.py": """\
                    from api import run as go


                    def caller():
                        return go()
                    """,
            },
        )
        # The alias chain resolves to the definition site, not the re-export.
        assert index.resolve_qname("api.run") == "core.work"
        assert set(index.project_callees("app.caller")) == {"core.work"}

    def test_external_calls_keep_their_canonical_dotted_name(self, tmp_path):
        index = _index(
            tmp_path,
            {
                "stats.py": """\
                    import numpy as np


                    def mean(values):
                        return np.mean(values)
                    """,
            },
        )
        assert "numpy.mean" in set(index.callees("stats.mean"))
        assert set(index.project_callees("stats.mean")) == set()

    def test_resolve_qname_leaves_unknown_names_unchanged(self, tmp_path):
        index = _index(tmp_path, {"m.py": "x = 1\n"})
        assert index.resolve_qname("os.path.join") == "os.path.join"


class TestCallGraph:
    def test_cycle_is_safe_and_fully_reachable(self, tmp_path):
        index = _index(
            tmp_path,
            {
                "m.py": """\
                    def f():
                        return g()


                    def g():
                        return f()
                    """,
            },
        )
        assert index.reachable_from(["m.f"]) == {"m.f", "m.g"}
        reverse = index.reverse_edges()
        assert "m.f" in reverse["m.g"]
        assert "m.g" in reverse["m.f"]

    def test_reachable_from_unknown_root_is_empty(self, tmp_path):
        index = _index(tmp_path, {"m.py": "x = 1\n"})
        assert index.reachable_from(["nowhere.f"]) == set()

    def test_typed_attribute_chain_resolves_to_method(self, tmp_path):
        index = _index(
            tmp_path,
            {
                "svc.py": """\
                    class Store:
                        def put(self, key):
                            return key


                    class App:
                        def __init__(self):
                            self.store = Store()

                        def handle(self, key):
                            return self.store.put(key)
                    """,
            },
        )
        assert set(index.project_callees("svc.App.handle")) == {"svc.Store.put"}

    def test_module_level_statements_get_a_synthetic_unit(self, tmp_path):
        index = _index(
            tmp_path,
            {
                "script.py": """\
                    def work():
                        return 1


                    work()
                    """,
            },
        )
        assert set(index.project_callees("script.<module>")) == {"script.work"}


class TestLockAndAccessCollection:
    def test_class_locks_attrs_and_guarded_mutation(self, tmp_path):
        index = _index(
            tmp_path,
            {
                "store.py": """\
                    import threading


                    class Store:
                        def __init__(self):
                            self._lock = threading.Lock()
                            self.jobs = {}

                        def put(self, key):
                            with self._lock:
                                self.jobs[key] = 1
                    """,
            },
        )
        cls = index.classes["store.Store"]
        assert "_lock" in cls.lock_attrs
        assert "jobs" in cls.mutable_attrs
        put = index.functions["store.Store.put"]
        [acquisition] = put.acquisitions
        assert acquisition.lock.endswith("._lock")
        mutations = [a for a in put.accesses if a.kind == "mutate"]
        assert mutations
        assert all(a.target == "store.Store.jobs" for a in mutations)
        assert all(acquisition.lock in a.held_locks for a in mutations)

    def test_module_global_lock_and_rebind(self, tmp_path):
        index = _index(
            tmp_path,
            {
                "state.py": """\
                    import threading

                    _lock = threading.Lock()
                    registry = {}


                    def reset():
                        global registry
                        registry = {}
                    """,
            },
        )
        module = index.modules["state"]
        assert "_lock" in module.global_locks
        assert "registry" in module.globals_mutable
        reset = index.functions["state.reset"]
        assert any(
            a.target == "state.registry" and a.kind == "rebind" for a in reset.accesses
        )


class TestToJson:
    def test_shape_and_stability(self, tmp_path):
        index = _index(
            tmp_path,
            {
                "helpers.py": """\
                    def work():
                        return 1
                    """,
                "app.py": """\
                    import helpers as h


                    def caller():
                        return h.work()
                    """,
            },
        )
        first = index.to_json()
        assert first == index.to_json()  # stable across renders
        doc = json.loads(first)
        assert doc["version"] == 1
        assert set(doc) == {"version", "modules", "functions", "classes"}
        assert "app" in doc["modules"]
        assert doc["functions"]["app.caller"]["calls"] == ["helpers.work"]
        assert doc["functions"]["app.<module>"]["class"] is None
