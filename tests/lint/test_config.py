"""Config loading: pyproject discovery, enable/disable, excludes."""

import textwrap

import pytest

from repro.lint import KNOWN_CODES, LintConfig, LintConfigError, lint_paths, load_config
from repro.lint.config import DEFAULT_PER_RULE_EXCLUDE, find_pyproject

VIOLATION = "import time\nt = time.time()\n"


def write_pyproject(tmp_path, body):
    path = tmp_path / "pyproject.toml"
    path.write_text(textwrap.dedent(body), encoding="utf-8")
    return path


class TestLoadConfig:
    def test_defaults_when_no_pyproject(self):
        config = load_config(None)
        assert config.enable is None
        assert config.disable == frozenset()
        assert config.per_rule_exclude == dict(DEFAULT_PER_RULE_EXCLUDE)

    def test_missing_section_is_defaults(self, tmp_path):
        path = write_pyproject(tmp_path, "[project]\nname = 'x'\n")
        config = load_config(path, known_codes=KNOWN_CODES)
        assert config.root == tmp_path
        assert config.rule_enabled("REP001")

    def test_disable(self, tmp_path):
        path = write_pyproject(tmp_path, "[tool.repro-lint]\ndisable = ['REP003']\n")
        config = load_config(path, known_codes=KNOWN_CODES)
        assert not config.rule_enabled("REP003")
        assert config.rule_enabled("REP001")

    def test_enable_is_exclusive(self, tmp_path):
        path = write_pyproject(tmp_path, "[tool.repro-lint]\nenable = ['REP004']\n")
        config = load_config(path, known_codes=KNOWN_CODES)
        assert config.rule_enabled("REP004")
        assert not config.rule_enabled("REP001")

    def test_unknown_code_rejected(self, tmp_path):
        path = write_pyproject(tmp_path, "[tool.repro-lint]\ndisable = ['REP999']\n")
        with pytest.raises(LintConfigError, match="REP999"):
            load_config(path, known_codes=KNOWN_CODES)

    def test_unknown_key_rejected(self, tmp_path):
        path = write_pyproject(tmp_path, "[tool.repro-lint]\nexculde = []\n")
        with pytest.raises(LintConfigError, match="exculde"):
            load_config(path, known_codes=KNOWN_CODES)

    def test_per_rule_exclude_extends_defaults(self, tmp_path):
        path = write_pyproject(
            tmp_path,
            """\
            [tool.repro-lint.per-rule-exclude]
            REP003 = ["legacy/*"]
            """,
        )
        config = load_config(path, known_codes=KNOWN_CODES)
        assert "legacy/*" in config.per_rule_exclude["REP003"]
        for pattern in DEFAULT_PER_RULE_EXCLUDE["REP003"]:
            assert pattern in config.per_rule_exclude["REP003"]

    def test_find_pyproject_walks_up(self, tmp_path):
        path = write_pyproject(tmp_path, "[tool.repro-lint]\n")
        nested = tmp_path / "src" / "pkg"
        nested.mkdir(parents=True)
        assert find_pyproject(nested) == path

    def test_find_pyproject_missing(self, tmp_path):
        assert find_pyproject(tmp_path) is None or find_pyproject(tmp_path).parent != tmp_path


class TestConfigApplied:
    def test_exclude_skips_file_entirely(self, tmp_path):
        (tmp_path / "skipme").mkdir()
        (tmp_path / "skipme" / "bad.py").write_text(VIOLATION, encoding="utf-8")
        (tmp_path / "kept.py").write_text(VIOLATION, encoding="utf-8")
        config = LintConfig(root=tmp_path, exclude=("skipme/*",))
        findings, scanned = lint_paths([tmp_path], config=config)
        assert scanned == 1
        assert [f.code for f in findings] == ["REP003"]
        assert findings[0].path.endswith("kept.py")

    def test_per_rule_exclude_only_masks_that_rule(self, tmp_path):
        source = "import time\ndef f(acc=[]):\n    return time.time()\n"
        (tmp_path / "mixed.py").write_text(source, encoding="utf-8")
        config = LintConfig(
            root=tmp_path,
            per_rule_exclude={"REP003": ("mixed.py",)},
        )
        findings, _ = lint_paths([tmp_path], config=config)
        assert [f.code for f in findings] == ["REP006"]

    def test_builtin_clock_exemption(self, tmp_path):
        # The default per-rule excludes sanction wall-clock reads in
        # repro/obs/clock.py (the single sanctioned entropy module);
        # everything else — including the telemetry shim — must route
        # through it and gets flagged.
        obs = tmp_path / "repro" / "obs"
        obs.mkdir(parents=True)
        runtime = tmp_path / "repro" / "runtime"
        runtime.mkdir(parents=True)
        (obs / "clock.py").write_text(VIOLATION, encoding="utf-8")
        (runtime / "telemetry.py").write_text(VIOLATION, encoding="utf-8")
        findings, _ = lint_paths([tmp_path], config=LintConfig(root=tmp_path))
        assert [f.code for f in findings] == ["REP003"]
        assert findings[0].path.endswith("telemetry.py")

    def test_disabled_rule_not_run(self, tmp_path):
        (tmp_path / "bad.py").write_text(VIOLATION, encoding="utf-8")
        config = LintConfig(root=tmp_path, disable=frozenset({"REP003"}))
        findings, scanned = lint_paths([tmp_path], config=config)
        assert findings == []
        assert scanned == 1
