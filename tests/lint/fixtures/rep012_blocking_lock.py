"""Fixture: REP012 — blocking call while holding a lock."""

import threading
import time

_lock = threading.Lock()


def slow_path():
    with _lock:
        time.sleep(0.01)  # violation: every thread queues behind the sleep
