"""Fixture: REP008 — a wall-clock read flows into the cache key."""

import time

from repro.runtime import TaskSpec


def work(stamp):
    return {"stamp": stamp}


def submit():
    stamp = time.time()  # repro-lint: disable=REP003 -- the taint flow, not the read, is under test
    return TaskSpec(id="job", fn=work, kwargs={"stamp": stamp})  # violation: tainted kwargs
