"""Fixture: REP009 — the callable executed on a cache miss is impure."""

import time

from repro.runtime import TaskSpec


def measure():
    return time.time()  # repro-lint: disable=REP003 -- the impurity, not the read, is under test


def submit():
    return TaskSpec(id="job", fn=measure, kwargs={})  # violation: impure fn
