"""Fixture: REP002 — generator built from fresh OS entropy."""

from numpy.random import default_rng


def sample(n):
    rng = default_rng()  # violation: unseeded
    return rng.normal(size=n)
