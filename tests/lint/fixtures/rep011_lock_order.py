"""Fixture: REP011 — two locks acquired in opposite orders."""

import threading

_lock_a = threading.Lock()
_lock_b = threading.Lock()


def forward():
    with _lock_a:
        with _lock_b:  # violation half: a -> b ...
            pass


def backward():
    with _lock_b:
        with _lock_a:  # ... and b -> a on another path
            pass
