"""Fixture: REP007 — non-atomic truncating write."""


def save(path, text):
    with open(path, "w") as fh:  # violation: torn file if killed mid-write
        fh.write(text)
