"""Fixture: REP003 — wall-clock read in library code."""

import time


def stamp_result(payload):
    payload["generated_at"] = time.time()  # violation: wall clock
    return payload
