"""Fixture: REP006 — mutable default argument."""


def collect(item, bucket=[]):  # violation: shared across calls
    bucket.append(item)
    return bucket
