"""Fixture: REP001 — module-level global RNG draw."""

import numpy as np

NOISE = np.random.rand(16)  # violation: global RNG state
