"""Fixture: REP010 — shared dict mutated off-lock on a thread-reachable path."""

import threading
from concurrent.futures import ThreadPoolExecutor


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.counts = {}

    def start(self):
        pool = ThreadPoolExecutor(max_workers=2)
        pool.submit(self.work)

    def work(self):
        self.counts["hits"] = 1  # violation: no lock held
