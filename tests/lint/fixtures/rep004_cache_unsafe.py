"""Fixture: REP004 — cache-unsafe callable handed to the runtime."""

from repro.runtime import TaskSpec

SPEC = TaskSpec(id="bad", fn=lambda: 1)  # violation: unpicklable lambda
