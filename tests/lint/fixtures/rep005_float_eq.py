"""Fixture: REP005 — bare float equality on a computed quantity."""


def is_perfect_fit(r_squared):
    return r_squared == 1.0  # violation: needs a tolerance
