"""Fixture: clean counterpart — the seeded, cache-safe way to do all of it."""

import math

from repro.util.rng import as_generator


def sample(n, seed=0):
    rng = as_generator(seed)
    return rng.normal(size=n)


def stamp_result(payload, generated_at):
    payload["generated_at"] = generated_at
    return payload


def is_perfect_fit(r_squared, tol=1e-9):
    return math.isclose(r_squared, 1.0, abs_tol=tol)


def collect(item, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket
