"""CLI behaviour: exit codes, formats, --output, rule selection."""

import json
import shutil
from pathlib import Path

import pytest

from repro.lint import KNOWN_CODES
from repro.lint.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main

FIXTURES = Path(__file__).resolve().parent / "fixtures"


@pytest.fixture
def fixture_tree(tmp_path):
    """The violation fixtures copied outside the repo, so the repository
    pyproject (which excludes them) is not discovered."""
    tree = tmp_path / "fixtures"
    shutil.copytree(FIXTURES, tree)
    return tree


class TestExitCodes:
    def test_fixture_tree_has_one_violation_per_rule(self, fixture_tree, capsys):
        assert main([str(fixture_tree), "--format", "json", "--no-config"]) == EXIT_FINDINGS
        report = json.loads(capsys.readouterr().out)
        assert report["summary"]["by_code"] == {code: 1 for code in sorted(KNOWN_CODES)}

    def test_clean_file_exits_zero(self, fixture_tree, capsys):
        assert main([str(fixture_tree / "clean.py"), "--no-config"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "clean (1 file(s) scanned)" in out

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope"), "--no-config"]) == EXIT_USAGE
        assert "error" in capsys.readouterr().err

    def test_unknown_select_code_is_usage_error(self, fixture_tree, capsys):
        assert main([str(fixture_tree), "--select", "REP999", "--no-config"]) == EXIT_USAGE
        assert "REP999" in capsys.readouterr().err


class TestFormats:
    def test_text_lines_are_canonical(self, fixture_tree, capsys):
        main([str(fixture_tree / "rep003_wall_clock.py"), "--no-config"])
        out = capsys.readouterr().out
        assert "rep003_wall_clock.py:7:30: REP003 [error]" in out
        assert "1 finding(s) in 1 file(s) scanned" in out

    def test_json_report_shape(self, fixture_tree, capsys):
        main([str(fixture_tree / "rep006_mutable_default.py"), "--format", "json", "--no-config"])
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == 1
        assert report["files_scanned"] == 1
        (finding,) = report["findings"]
        assert finding["code"] == "REP006"
        assert set(finding) == {"path", "line", "col", "code", "severity", "message"}

    def test_output_writes_file_and_summary_to_stderr(self, fixture_tree, tmp_path, capsys):
        out_file = tmp_path / "reports" / "lint.json"
        code = main(
            [str(fixture_tree), "--format", "json", "--output", str(out_file), "--no-config"]
        )
        assert code == EXIT_FINDINGS
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "finding(s)" in captured.err
        report = json.loads(out_file.read_text(encoding="utf-8"))
        assert report["summary"]["total"] == len(KNOWN_CODES)


class TestSelection:
    def test_select_runs_only_named_rules(self, fixture_tree, capsys):
        assert main([str(fixture_tree), "--select", "REP005", "--format", "json", "--no-config"]) == EXIT_FINDINGS
        report = json.loads(capsys.readouterr().out)
        assert report["summary"]["by_code"] == {"REP005": 1}

    def test_ignore_skips_named_rules(self, fixture_tree, capsys):
        args = [str(fixture_tree), "--ignore", "REP001,REP004", "--format", "json", "--no-config"]
        assert main(args) == EXIT_FINDINGS
        report = json.loads(capsys.readouterr().out)
        assert set(report["summary"]["by_code"]) == KNOWN_CODES - {"REP001", "REP004"}

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for code in KNOWN_CODES:
            assert code in out


class TestConfigDiscovery:
    def test_pyproject_exclude_discovered_from_linted_path(self, fixture_tree, capsys):
        (fixture_tree.parent / "pyproject.toml").write_text(
            "[tool.repro-lint]\nexclude = ['fixtures/rep*']\n", encoding="utf-8"
        )
        assert main([str(fixture_tree)]) == EXIT_CLEAN
        assert "clean" in capsys.readouterr().out

    def test_explicit_config_flag(self, fixture_tree, tmp_path, capsys):
        config = tmp_path / "custom.toml"
        config.write_text("[tool.repro-lint]\nenable = ['REP002']\n", encoding="utf-8")
        assert main([str(fixture_tree), "--config", str(config), "--format", "json"]) == EXIT_FINDINGS
        report = json.loads(capsys.readouterr().out)
        assert set(report["summary"]["by_code"]) == {"REP002"}

    def test_invalid_config_is_usage_error(self, fixture_tree, tmp_path, capsys):
        config = tmp_path / "custom.toml"
        config.write_text("[tool.repro-lint]\ndisable = ['REP999']\n", encoding="utf-8")
        assert main([str(fixture_tree), "--config", str(config)]) == EXIT_USAGE
        assert "REP999" in capsys.readouterr().err
