"""The self-hosted gate: the analyzer must be clean on its own codebase.

This is the same invocation CI runs (``python -m repro.lint src tests``)
— if it fails, either a determinism violation crept in or a new rule
needs the offending code fixed/suppressed before it can land.
"""

import json
from pathlib import Path

from repro.lint.cli import EXIT_CLEAN, main

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestSelfHost:
    def test_src_and_tests_are_clean(self, capsys):
        code = main([str(REPO_ROOT / "src"), str(REPO_ROOT / "tests"), "--format", "json"])
        report = json.loads(capsys.readouterr().out)
        assert report["findings"] == [], "\n".join(
            f"{f['path']}:{f['line']}: {f['code']} {f['message']}" for f in report["findings"]
        )
        assert code == EXIT_CLEAN
        # Sanity: the walk really covered the codebase.
        assert report["files_scanned"] > 100

    def test_repo_config_excludes_lint_fixtures(self, capsys):
        # The fixtures directory holds deliberate violations; the repo
        # pyproject must keep them out of the gate.
        code = main([str(REPO_ROOT / "tests" / "lint" / "fixtures")])
        assert code == EXIT_CLEAN
        assert "0 file(s) scanned" in capsys.readouterr().out
