"""Engine-level behaviour: alias resolution, suppressions, parse errors."""

import ast
import textwrap

from repro.lint import PARSE_ERROR_CODE, Severity, lint_source
from repro.lint.engine import ImportTable, collect_suppressions


def codes(source):
    return [f.code for f in lint_source(textwrap.dedent(source))]


class TestImportTable:
    def resolve(self, source, expr):
        table = ImportTable()
        for node in ast.parse(source).body:
            if isinstance(node, ast.Import):
                table.add_import(node)
            elif isinstance(node, ast.ImportFrom):
                table.add_import_from(node)
        return table.resolve(ast.parse(expr, mode="eval").body)

    def test_plain_import(self):
        assert self.resolve("import time", "time.time") == "time.time"

    def test_aliased_import(self):
        assert self.resolve("import numpy as np", "np.random.rand") == "numpy.random.rand"

    def test_submodule_import_binds_root(self):
        assert self.resolve("import numpy.random", "numpy.random.rand") == "numpy.random.rand"

    def test_from_import_with_alias(self):
        assert (
            self.resolve("from numpy.random import default_rng as mk", "mk")
            == "numpy.random.default_rng"
        )

    def test_from_import_shadows_stdlib(self):
        assert self.resolve("from numpy import random", "random.rand") == "numpy.random.rand"

    def test_unknown_and_relative_names_unresolved(self):
        assert self.resolve("import time", "os.urandom") is None
        assert self.resolve("from . import sibling", "sibling.f") is None

    def test_call_rooted_expression_unresolved(self):
        assert self.resolve("import random", "random.Random(0).random") is None


class TestSuppressions:
    def test_line_suppression_specific_code(self):
        assert (
            codes(
                """\
                import time
                t = time.time()  # repro-lint: disable=REP003
                """
            )
            == []
        )

    def test_line_suppression_with_trailing_rationale(self):
        assert (
            codes(
                """\
                import time
                t = time.time()  # repro-lint: disable=REP003 -- wall clock is the point
                """
            )
            == []
        )

    def test_line_suppression_wrong_code_still_reports(self):
        assert codes(
            """\
            import time
            t = time.time()  # repro-lint: disable=REP001
            """
        ) == ["REP003"]

    def test_line_suppression_all_codes(self):
        assert (
            codes(
                """\
                import time
                def f(acc=[]):
                    return 1
                t = time.time()  # repro-lint: disable
                """
            )
            == ["REP006"]
        )

    def test_line_suppression_multiple_codes(self):
        assert (
            codes(
                """\
                import time
                def f(acc=[]):  # repro-lint: disable=REP006, REP001
                    return time.time()  # repro-lint: disable=REP003
                """
            )
            == []
        )

    def test_file_suppression(self):
        assert (
            codes(
                """\
                # repro-lint: disable-file=REP003
                import time
                a = time.time()
                b = time.time_ns()
                """
            )
            == []
        )

    def test_suppression_only_covers_its_line(self):
        assert codes(
            """\
            import time
            a = time.time()  # repro-lint: disable=REP003
            b = time.time()
            """
        ) == ["REP003"]

    def test_suppression_text_inside_string_ignored(self):
        assert codes(
            """\
            import time
            note = "# repro-lint: disable-file=REP003"
            t = time.time()
            """
        ) == ["REP003"]

    def test_collect_suppressions_shapes(self):
        per_line, per_file = collect_suppressions(
            "# repro-lint: disable-file=REP005\nx = 1  # repro-lint: disable=REP001,REP002\n"
        )
        assert per_file == {"REP005"}
        assert per_line == {2: {"REP001", "REP002"}}


class TestParseErrors:
    def test_syntax_error_becomes_finding(self):
        (f,) = lint_source("def broken(:\n", path="bad.py")
        assert f.code == PARSE_ERROR_CODE
        assert f.path == "bad.py"
        assert f.severity is Severity.ERROR
        assert "does not parse" in f.message
