"""Per-rule fixtures: known violations plus clean counterparts.

Each rule gets snippet pairs — code that must be flagged with the exact
``(line, col, code)`` golden location, and the clean way to write the
same thing, which must produce no findings at all.
"""

import textwrap

from repro.lint import Severity, lint_source


def findings(source):
    return lint_source(textwrap.dedent(source))


def codes(source):
    return [f.code for f in findings(source)]


class TestRep001GlobalRng:
    def test_numpy_module_level_draw(self):
        (f,) = findings(
            """\
            import numpy as np
            x = np.random.rand(10)
            """
        )
        assert (f.line, f.col, f.code) == (2, 4, "REP001")
        assert f.severity is Severity.ERROR
        assert "global RNG" in f.message and "as_generator" in f.message

    def test_numpy_seed_and_stdlib_draws(self):
        assert codes(
            """\
            import random
            import numpy as np
            np.random.seed(0)
            random.seed(0)
            y = random.gauss(0, 1)
            """
        ) == ["REP001", "REP001", "REP001"]

    def test_alias_resolution_from_numpy_import_random(self):
        assert codes(
            """\
            from numpy import random as npr
            x = npr.shuffle([1, 2, 3])
            """
        ) == ["REP001"]

    def test_clean_generator_usage(self):
        assert (
            codes(
                """\
                import numpy as np
                def draw(n, rng):
                    return rng.normal(size=n)
                gen = np.random.Generator(np.random.PCG64(42))
                """
            )
            == []
        )

    def test_seeded_stdlib_random_instance_allowed(self):
        assert codes("import random\nr = random.Random(7)\n") == []

    def test_unimported_name_not_flagged(self):
        # ``random`` here is a local, not the stdlib module.
        assert codes("random = object()\nrandom.seed(0)\n") == []


class TestRep002UnseededGenerator:
    def test_default_rng_no_args(self):
        (f,) = findings(
            """\
            import numpy as np
            rng = np.random.default_rng()
            """
        )
        assert (f.line, f.col, f.code) == (2, 6, "REP002")
        assert "fresh OS entropy" in f.message

    def test_default_rng_explicit_none(self):
        assert codes("from numpy.random import default_rng\nr = default_rng(None)\n") == ["REP002"]

    def test_unseeded_bit_generator_and_stdlib(self):
        assert codes(
            """\
            import random
            import numpy as np
            a = np.random.PCG64()
            b = random.Random()
            """
        ) == ["REP002", "REP002"]

    def test_system_random_always_flagged(self):
        assert codes("import random\nr = random.SystemRandom(4)\n") == ["REP002"]

    def test_seeded_counterparts_clean(self):
        assert (
            codes(
                """\
                import numpy as np
                from numpy.random import default_rng
                a = default_rng(0)
                b = np.random.default_rng(seed=3)
                c = np.random.PCG64(7)
                """
            )
            == []
        )


class TestRep003NondeterministicCall:
    def test_time_time(self):
        (f,) = findings("import time\nstamp = time.time()\n")
        assert (f.line, f.col, f.code) == (2, 8, "REP003")
        assert "nondeterministic" in f.message

    def test_datetime_now_via_from_import(self):
        assert codes("from datetime import datetime\nnow = datetime.now()\n") == ["REP003"]

    def test_uuid_urandom_secrets(self):
        assert codes(
            """\
            import os
            import secrets
            import uuid
            a = uuid.uuid4()
            b = os.urandom(8)
            c = secrets.token_hex(4)
            """
        ) == ["REP003", "REP003", "REP003"]

    def test_argless_gmtime_flagged_seeded_gmtime_clean(self):
        assert codes("import time\nx = time.gmtime()\n") == ["REP003"]
        assert codes("import time\nx = time.gmtime(12345.0)\n") == []

    def test_perf_counter_allowed(self):
        # Duration measurement is not a reproducibility hazard.
        assert codes("import time\nt = time.perf_counter()\n") == []


class TestRep004CacheSafety:
    def test_lambda_fn(self):
        (f,) = findings(
            """\
            from repro.runtime import TaskSpec
            spec = TaskSpec(id="x", fn=lambda: 1)
            """
        )
        assert (f.line, f.col, f.code) == (2, 27, "REP004")
        assert "lambda" in f.message

    def test_partial_fn(self):
        assert codes(
            """\
            import functools
            from repro.runtime.task import TaskSpec
            spec = TaskSpec(id="x", fn=functools.partial(print, 1))
            """
        ) == ["REP004"]

    def test_nested_def_fn(self):
        assert codes(
            """\
            from repro.runtime import TaskSpec
            def build():
                def inner():
                    return 1
                return TaskSpec(id="x", fn=inner)
            """
        ) == ["REP004"]

    def test_non_json_kwargs(self):
        assert codes(
            """\
            from repro.runtime import TaskSpec
            spec = TaskSpec(id="x", fn=print, kwargs={"data": {1, 2}})
            """
        ) == ["REP004"]
        assert codes(
            """\
            from repro.runtime import TaskSpec
            spec = TaskSpec(id="x", fn=print, kwargs={3: "non-string-key"})
            """
        ) == ["REP004"]

    def test_module_level_fn_and_json_kwargs_clean(self):
        assert (
            codes(
                """\
                from repro.runtime import TaskSpec
                def work(n, seed):
                    return n * seed
                spec = TaskSpec(id="x", fn=work, kwargs={"n": 10, "seed": 0})
                """
            )
            == []
        )

    def test_module_level_fn_referenced_inside_function_clean(self):
        assert (
            codes(
                """\
                from repro.runtime import TaskSpec
                def work():
                    return 1
                def build():
                    return TaskSpec(id="x", fn=work)
                """
            )
            == []
        )


class TestRep005FloatEquality:
    def test_equality_against_literal(self):
        (f,) = findings("def perfect(r2):\n    return r2 == 1.0\n")
        assert (f.line, f.col, f.code) == (2, 11, "REP005")
        assert f.severity is Severity.WARNING
        assert "isclose" in f.message

    def test_negative_literal_and_not_equal(self):
        assert codes("def check(h):\n    return h != -0.5\n") == ["REP005"]

    def test_assert_statements_exempt(self):
        # Exact golden-value assertions on deterministic outputs are the
        # point of reproducibility tests.
        assert codes("def test_it():\n    assert estimate() == 0.82\n") == []

    def test_integer_equality_clean(self):
        assert codes("def check(n):\n    return n == 3\n") == []

    def test_tolerance_comparison_clean(self):
        assert codes("import math\ndef check(h):\n    return math.isclose(h, 0.5)\n") == []


class TestRep006MutableDefault:
    def test_list_literal_default(self):
        (f,) = findings("def collect(x, acc=[]):\n    return acc\n")
        assert (f.line, f.col, f.code) == (1, 19, "REP006")
        assert "shared across calls" in f.message

    def test_dict_set_and_constructor_defaults(self):
        assert codes("def f(a={}, b=set(), c=dict()):\n    return a\n") == [
            "REP006",
            "REP006",
            "REP006",
        ]

    def test_keyword_only_and_lambda_defaults(self):
        assert codes("def f(*, acc=[]):\n    return acc\n") == ["REP006"]
        assert codes("g = lambda acc=[]: acc\n") == ["REP006"]

    def test_collections_defaultdict(self):
        assert codes(
            "import collections\ndef f(m=collections.defaultdict(list)):\n    return m\n"
        ) == ["REP006"]

    def test_none_and_immutable_defaults_clean(self):
        assert codes("def f(a=None, b=(), c=0, d='x', e=frozenset()):\n    return a\n") == []


class TestRep007NonAtomicWrite:
    def test_truncating_open_flagged(self):
        (f,) = findings(
            """\
            def save(path, text):
                with open(path, "w") as fh:
                    fh.write(text)
            """
        )
        assert (f.line, f.col, f.code) == (2, 9, "REP007")
        assert f.severity is Severity.ERROR
        assert "atomic_write_text" in f.message

    def test_module_level_write_flagged(self):
        assert codes('open("state.json", "w").write("{}")\n') == ["REP007"]

    def test_write_text_method_flagged(self):
        assert codes(
            """\
            def save(path, text):
                path.write_text(text)
            """
        ) == ["REP007"]

    def test_mode_keyword_flagged(self):
        assert codes('fh = open("x", mode="wt")\n') == ["REP007"]

    def test_scope_with_os_replace_is_atomic_idiom(self):
        assert codes(
            """\
            import os
            def save(path, text):
                with open(path + ".tmp", "w") as fh:
                    fh.write(text)
                os.replace(path + ".tmp", path)
            """
        ) == []

    def test_rename_method_blesses_scope(self):
        assert codes(
            """\
            def save(path, text):
                tmp = path.with_suffix(".tmp")
                tmp.write_text(text)
                tmp.replace(path)
            """
        ) == []

    def test_append_and_read_modes_clean(self):
        # Appends never destroy prior records (journals depend on this).
        assert codes(
            """\
            def log(path, line):
                with open(path, "a") as fh:
                    fh.write(line)
                with open(path) as fh:
                    return fh.read()
            """
        ) == []

    def test_nested_function_scope_is_independent(self):
        # The outer scope's os.replace must not bless the inner write.
        assert codes(
            """\
            import os
            def outer(path, text):
                def inner():
                    with open(path, "w") as fh:
                        fh.write(text)
                os.replace(path, path + ".bak")
                return inner
            """
        ) == ["REP007"]

    def test_non_builtin_open_not_flagged(self):
        assert codes(
            """\
            import gzip
            def save(path, text):
                with gzip.open(path, "wt") as fh:
                    fh.write(text)
            """
        ) == []


class TestFindingShape:
    def test_findings_sort_by_location(self):
        result = findings(
            """\
            import time
            def f(acc=[]):
                return time.time()
            """
        )
        assert [f.code for f in result] == ["REP006", "REP003"]
        assert result == sorted(result)

    def test_as_dict_round_trip(self):
        (f,) = findings("import time\nt = time.time()\n")
        doc = f.as_dict()
        assert doc == {
            "path": "<string>",
            "line": 2,
            "col": 4,
            "code": "REP003",
            "severity": "error",
            "message": f.message,
        }
