"""SARIF 2.1.0 output: document shape, rule catalog, and CLI wiring."""

import json

from repro.lint.cli import main
from repro.lint.engine import PROJECT_RULES
from repro.lint.findings import Finding, Severity
from repro.lint.rules import ALL_RULES
from repro.lint.sarif import render_sarif

BAD_SOURCE = '''\
import time


def stamp():
    return time.time()
'''


def _catalog():
    return [*ALL_RULES, *PROJECT_RULES]


def test_document_shape_and_rule_catalog():
    doc = json.loads(render_sarif([], rule_catalog=_catalog()))
    assert doc["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in doc["$schema"]
    [run] = doc["runs"]
    assert run["results"] == []
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    ids = [rule["id"] for rule in driver["rules"]]
    assert ids == sorted(ids)
    # The full catalog ships even with zero findings, including the
    # parse-error pseudo-rule and the interprocedural rules.
    assert {"REP000", "REP003", "REP008", "REP010", "REP012"} <= set(ids)
    by_id = {rule["id"]: rule for rule in driver["rules"]}
    assert by_id["REP008"]["defaultConfiguration"]["level"] == "error"
    assert by_id["REP012"]["defaultConfiguration"]["level"] == "warning"
    assert by_id["REP008"]["shortDescription"]["text"]


def test_results_carry_one_based_physical_locations():
    finding = Finding(
        path="src/repro/x.py",
        line=7,
        col=0,
        code="REP003",
        severity=Severity.ERROR,
        message="wall clock",
    )
    doc = json.loads(render_sarif([finding], rule_catalog=_catalog()))
    [result] = doc["runs"][0]["results"]
    assert result["ruleId"] == "REP003"
    assert result["level"] == "error"
    assert result["message"]["text"] == "wall clock"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/repro/x.py"
    assert location["region"]["startLine"] == 7
    assert location["region"]["startColumn"] == 1  # 0-based col -> 1-based


def test_cli_format_sarif_end_to_end(tmp_path, capsys):
    (tmp_path / "bad.py").write_text(BAD_SOURCE, encoding="utf-8")
    rc = main([str(tmp_path), "--no-config", "--format", "sarif"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 1
    [result] = doc["runs"][0]["results"]
    assert result["ruleId"] == "REP003"
    assert result["locations"][0]["physicalLocation"]["region"]["startLine"] == 5
    assert result["locations"][0]["physicalLocation"]["artifactLocation"][
        "uri"
    ].endswith("bad.py")


def test_cli_sarif_output_file(tmp_path, capsys):
    (tmp_path / "bad.py").write_text(BAD_SOURCE, encoding="utf-8")
    out = tmp_path / "report.sarif"
    rc = main(
        [str(tmp_path), "--no-config", "--format", "sarif", "--output", str(out)]
    )
    captured = capsys.readouterr()
    assert rc == 1
    assert "finding(s)" in captured.err  # summary still lands on stderr
    doc = json.loads(out.read_text(encoding="utf-8"))
    assert doc["runs"][0]["results"]
