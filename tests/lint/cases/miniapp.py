"""Seeded true positives: wall-clock taint reaching cache identity.

``submit`` builds a cache key from a timestamp that arrives through a
helper-function chain (``fresh_stamp``) — only the interprocedural
returns-summary propagation can connect the source to the sink
(REP008).  ``cached`` hands an impure callable to ``get_or_compute``
(REP009).  ``submit_clean`` keys on request parameters only and must
stay unflagged.
"""

import time


class ResultCache:
    def key(self, experiment, kwargs):
        return f"{experiment}:{sorted(kwargs.items())}"

    def get_or_compute(self, key, compute):
        return compute()


def fresh_stamp():
    return time.time()  # repro-lint: disable=REP003 -- seeding the taint under test


def measure():
    return time.time()  # repro-lint: disable=REP003 -- seeding the impurity under test


def submit(cache: ResultCache):
    stamp = fresh_stamp()
    return cache.key("analysis", {"stamp": stamp})  # seeded REP008: tainted key


def cached(cache: ResultCache):
    return cache.get_or_compute("analysis:v1", measure)  # seeded REP009: impure compute


def submit_clean(cache: ResultCache, n_jobs):
    return cache.key("analysis", {"n_jobs": n_jobs})  # pure: must NOT be flagged
