"""Seeded true positives: entropy in a model-sampler shape.

``sample_batch`` builds its sampler stream from fresh OS entropy
(REP002) — every process start draws a different synthetic workload.
``submit_model_run`` derives a sampler kwarg from an unseeded generator
through a helper (``entropy_seed``) and keys the result cache on it
(REP008); only the interprocedural returns-summary propagation can see
the generator behind the ``int(...)`` conversion.  ``submit_pinned``
keys on an explicit caller-provided seed and must stay unflagged.
"""

import numpy as np


class ResultCache:
    def key(self, experiment, kwargs):
        return f"{experiment}:{sorted(kwargs.items())}"


class SamplerModel:
    def generate(self, n_jobs, seed):
        rng = np.random.default_rng(seed)
        return rng.exponential(1.0, n_jobs)


def sample_batch(n_jobs):
    rng = np.random.default_rng()  # seeded REP002: fresh-entropy sampler stream
    return rng.exponential(1.0, n_jobs)


def entropy_seed():
    gen = np.random.default_rng()  # repro-lint: disable=REP002 -- seeding the taint under test
    return int(gen.integers(0, 2**31))


def submit_model_run(cache: ResultCache, n_jobs):
    seed = entropy_seed()
    return cache.key("generate", {"n_jobs": n_jobs, "seed": seed})  # seeded REP008: tainted sampler kwarg


def submit_pinned(cache: ResultCache, n_jobs, seed):
    return cache.key("generate", {"n_jobs": n_jobs, "seed": seed})  # pure: must NOT be flagged
