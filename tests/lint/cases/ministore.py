"""Seeded true positive: a miniature job store with an unguarded shared dict.

``mark_running`` executes on pool threads (the ``submit`` call makes it
a thread entry) and writes ``self.jobs`` with no lock held — the exact
shape of the race REP010 exists to catch.  ``mark_done`` shows the
compliant pattern and must stay unflagged.
"""

import threading
from concurrent.futures import ThreadPoolExecutor


class MiniStore:
    def __init__(self):
        self._lock = threading.Lock()
        self.jobs = {}

    def start(self, job_id):
        pool = ThreadPoolExecutor(max_workers=4)
        pool.submit(self.mark_running, job_id)
        pool.submit(self.mark_done, job_id)

    def mark_running(self, job_id):
        self.jobs[job_id] = "running"  # seeded REP010: no lock held

    def mark_done(self, job_id):
        with self._lock:
            self.jobs[job_id] = "done"  # guarded: must NOT be flagged
