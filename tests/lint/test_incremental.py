"""Incremental lint cache: correctness, invalidation, and the warm-run bound.

The cache must be invisible in results — a warm run returns byte-for-byte
the cold run's findings — and only visible in timings.  The benchmark
test at the bottom pins the acceptance bound: linting the repository's
own unchanged ``src`` + ``tests`` tree through a warm cache costs file
hashing, not parsing, and finishes in under a second.
"""

import shutil
import time
from pathlib import Path

import repro.lint.engine as engine
from repro.lint.cli import main
from repro.lint.config import LintConfig, load_config
from repro.lint.engine import lint_paths
from repro.lint.incremental import LintCache, default_cache_dir, ruleset_digest
from repro.lint.rules import KNOWN_CODES

CASES = Path(__file__).resolve().parent / "cases"
REPO_ROOT = Path(__file__).resolve().parents[2]

CLOCKY = '''\
import time


def stamp():
    return time.time()
'''


def _tree(tmp_path):
    """A small tree with both local (REP003) and project findings."""
    tree = tmp_path / "proj"
    shutil.copytree(CASES, tree)
    (tree / "clocky.py").write_text(CLOCKY, encoding="utf-8")
    return tree


def test_warm_run_matches_cold_and_never_parses(tmp_path, monkeypatch):
    tree = _tree(tmp_path)
    config = LintConfig()
    cache_dir = tmp_path / "cache"
    cold, cold_scanned = lint_paths(
        [tree], config=config, cache=LintCache(cache_dir, config)
    )
    assert cold  # the tree is built to have findings worth caching
    assert {f.code for f in cold} >= {"REP003", "REP008", "REP010"}

    def boom(*args, **kwargs):
        raise AssertionError("a fully warm run must not parse anything")

    monkeypatch.setattr(engine.ast, "parse", boom)
    warm, warm_scanned = lint_paths(
        [tree], config=config, cache=LintCache(cache_dir, config)
    )
    assert warm == cold
    assert warm_scanned == cold_scanned


def test_edit_relints_only_the_changed_file(tmp_path, monkeypatch):
    tree = _tree(tmp_path)
    config = LintConfig()
    cache_dir = tmp_path / "cache"
    lint_paths([tree], config=config, cache=LintCache(cache_dir, config))

    target = tree / "clocky.py"
    target.write_text(
        target.read_text(encoding="utf-8")
        + "\n\ndef stamp_again():\n    return time.time()\n",
        encoding="utf-8",
    )

    relinted = []
    real = engine._lint_tree

    def counting(tree_node, **kwargs):
        relinted.append(kwargs["path"])
        return real(tree_node, **kwargs)

    monkeypatch.setattr(engine, "_lint_tree", counting)
    findings, _ = lint_paths([tree], config=config, cache=LintCache(cache_dir, config))
    # Every file is re-parsed (the project pass needs all trees), but
    # only the edited file pays the local-rule walk again.
    assert relinted == [str(target)]
    assert sum(1 for f in findings if f.code == "REP003") == 2


def test_config_change_and_content_change_are_misses(tmp_path):
    config = LintConfig()
    cache = LintCache(tmp_path / "cache", config)
    source = "x = 1\n"
    path = tmp_path / "m.py"
    path.write_text(source, encoding="utf-8")

    cache.store_local(path, source, [])
    assert LintCache(tmp_path / "cache", config).load_local(path, source) == []
    other_config = LintConfig(disable=frozenset({"REP003"}))
    assert LintCache(tmp_path / "cache", other_config).load_local(path, source) is None
    assert cache.load_local(path, source + "# edited\n") is None


def test_corrupt_entries_are_silent_misses(tmp_path):
    tree = _tree(tmp_path)
    config = LintConfig()
    cache_dir = tmp_path / "cache"
    cold, _ = lint_paths([tree], config=config, cache=LintCache(cache_dir, config))

    entries = list(cache_dir.rglob("*.json"))
    assert entries  # both per-file and project entries were written
    for entry in entries:
        entry.write_text("{ not json", encoding="utf-8")

    again, _ = lint_paths([tree], config=config, cache=LintCache(cache_dir, config))
    assert again == cold


def test_ruleset_digest_is_stable_and_nonempty():
    digest = ruleset_digest()
    assert digest == ruleset_digest()
    assert len(digest) == 64


def test_cli_cache_dir_and_no_incremental(tmp_path, capsys):
    tree = _tree(tmp_path)
    explicit = tmp_path / "explicit-cache"

    rc = main(
        [str(tree), "--no-config", "--cache-dir", str(explicit), "--format", "json"]
    )
    capsys.readouterr()
    assert rc == 1
    assert explicit.is_dir() and list(explicit.rglob("*.json"))

    untouched = tmp_path / "never-created"
    rc = main(
        [
            str(tree),
            "--no-config",
            "--no-incremental",
            "--cache-dir",
            str(untouched),
            "--format",
            "json",
        ]
    )
    capsys.readouterr()
    assert rc == 1
    assert not untouched.exists()


def test_default_cache_dir_lives_under_results():
    assert default_cache_dir(Path("/x")) == Path("/x/results/lint-cache")


def test_warm_full_tree_benchmark(tmp_path):
    """Acceptance bound: the self-hosted tree warm-lints in under a second."""
    config = load_config(REPO_ROOT / "pyproject.toml", known_codes=KNOWN_CODES)
    paths = [REPO_ROOT / "src", REPO_ROOT / "tests"]
    cache_dir = tmp_path / "cache"

    start = time.monotonic()
    cold, cold_scanned = lint_paths(
        paths, config=config, cache=LintCache(cache_dir, config)
    )
    cold_seconds = time.monotonic() - start
    assert cold_seconds < 60.0  # generous: the cold pass is the expensive one

    start = time.monotonic()
    warm, warm_scanned = lint_paths(
        paths, config=config, cache=LintCache(cache_dir, config)
    )
    warm_seconds = time.monotonic() - start

    assert warm == cold
    assert warm_scanned == cold_scanned
    assert warm_seconds < 1.0, f"warm lint took {warm_seconds:.2f}s"
    assert warm_seconds < cold_seconds
