"""Meta-tests on the public API surface: exports resolve, everything public
is documented, and the experiment registry matches its documentation."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.util",
    "repro.stats",
    "repro.workload",
    "repro.coplot",
    "repro.coplot.mds",
    "repro.models",
    "repro.selfsim",
    "repro.archive",
    "repro.scheduler",
    "repro.runtime",
    "repro.experiments",
]


def _public_objects(module):
    names = getattr(module, "__all__", None)
    if names is None:
        return []
    return [(name, getattr(module, name)) for name in names]


class TestExports:
    @pytest.mark.parametrize("pkg", PACKAGES)
    def test_all_exports_resolve(self, pkg):
        module = importlib.import_module(pkg)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{pkg}.__all__ lists missing {name}"

    @pytest.mark.parametrize("pkg", PACKAGES)
    def test_package_has_docstring(self, pkg):
        module = importlib.import_module(pkg)
        assert module.__doc__ and len(module.__doc__.strip()) > 40, pkg


class TestDocstrings:
    @pytest.mark.parametrize("pkg", PACKAGES)
    def test_public_callables_documented(self, pkg):
        module = importlib.import_module(pkg)
        undocumented = []
        for name, obj in _public_objects(module):
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(f"{pkg}.{name}")
        assert not undocumented, f"undocumented public API: {undocumented}"

    def test_all_submodules_have_docstrings(self):
        missing = []
        for pkg_name in PACKAGES:
            pkg = importlib.import_module(pkg_name)
            if not hasattr(pkg, "__path__"):
                continue
            for info in pkgutil.iter_modules(pkg.__path__):
                mod = importlib.import_module(f"{pkg_name}.{info.name}")
                if not (mod.__doc__ and mod.__doc__.strip()):
                    missing.append(mod.__name__)
        assert not missing, f"modules without docstrings: {missing}"


class TestExperimentRegistry:
    def test_registry_matches_docs(self):
        from repro.experiments import EXPERIMENTS

        doc = importlib.import_module("repro.experiments").__doc__
        for exp_id in EXPERIMENTS:
            assert exp_id in doc, f"experiment {exp_id} undocumented in package doc"

    def test_every_experiment_produces_renderable_result(self):
        """The runner contract: each run_* returns something with render()
        and (directly or callably) claims."""
        from repro.experiments import EXPERIMENTS

        for exp_id, fn in EXPERIMENTS.items():
            sig = inspect.signature(fn)
            assert all(
                p.default is not inspect.Parameter.empty
                or p.kind is inspect.Parameter.VAR_KEYWORD
                for p in sig.parameters.values()
            ), f"{exp_id} requires positional arguments"


class TestVersioning:
    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)
