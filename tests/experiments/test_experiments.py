"""Integration tests: every experiment runs and its paper claims hold.

These are the reproduction's acceptance tests — each asserts the *shape*
findings of the corresponding table/figure, at reduced job counts to stay
fast.  A claim failure here means the reproduction has drifted.
"""

import numpy as np
import pytest

from repro.experiments import (
    run_figure1,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_load_alteration,
    run_parameterization,
    run_table1,
    run_table2,
    run_table3,
)


def assert_claims(result):
    claims = result.claims() if callable(getattr(result, "claims")) else result.claims
    failed = [c for c in claims if not c.holds]
    assert not failed, "claims failed:\n" + "\n".join(c.render() for c in failed)


@pytest.fixture(scope="module")
def table3_result():
    return run_table3(n_jobs=6000, seed=0)


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table1(n_jobs=4000, seed=0)

    def test_all_cells_within_band(self, result):
        assert result.worst_cells(tolerance=0.3) == []

    def test_ratio_accessor(self, result):
        assert result.ratio("CTC", "Rm") == pytest.approx(1.0, abs=0.1)

    def test_render_contains_workloads(self, result):
        text = result.render()
        assert "CTC" in text and "SDSCb" in text


class TestFigure1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure1()

    def test_claims(self, result):
        assert_claims(result)

    def test_headline_numbers(self, result):
        assert result.coplot.alienation == pytest.approx(0.07, abs=0.04)
        assert result.coplot.average_correlation == pytest.approx(0.88, abs=0.05)

    def test_render(self, result):
        assert "Figure 1" in result.render()


class TestFigure2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure2()

    def test_claims(self, result):
        assert_claims(result)

    def test_better_fit_than_figure1(self, result):
        assert result.coplot.alienation <= 0.10

    def test_interactive_cluster_tight(self, result):
        assert result.interactive_cluster_diameter < result.mean_pairwise_distance


class TestTable2:
    def test_all_cells_within_band(self):
        result = run_table2(n_jobs=4000, seed=0)
        assert result.worst_cells(tolerance=0.3) == []


class TestFigure3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure3()

    def test_claims(self, result):
        assert_claims(result)

    def test_lanl_regime_change_detected(self, result):
        assert result.lanl_year2_spread > 2 * result.lanl_year1_spread


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure4(n_jobs=5000, seed=0)

    def test_claims(self, result):
        assert_claims(result)

    def test_lublin_most_central_model(self, result):
        ranking = result.centroid_ranking()
        models = [n for n in ranking if n in result.model_stats]
        assert models[0] == "Lublin"

    def test_jann_near_ctc(self, result):
        assert result.nearest_production("Jann") in ("CTC", "KTH")


class TestParameterization:
    @pytest.fixture(scope="class")
    def result(self):
        return run_parameterization()

    def test_claims(self, result):
        assert_claims(result)

    def test_paper_triple_quality(self, result):
        assert result.paper_triple_score.alienation <= 0.10
        assert result.paper_triple_score.average_correlation >= 0.85


class TestLoadAlteration:
    @pytest.fixture(scope="class")
    def result(self):
        return run_load_alteration(n_jobs=4000, seed=0)

    def test_claims(self, result):
        assert_claims(result)

    def test_observed_positive_load_interarrival_correlation(self, result):
        assert result.observed_correlations[
            "load vs inter-arrival median (RL, Im)"
        ] > 0.5

    def test_all_techniques_raise_load(self, result):
        for load in result.technique_loads.values():
            assert load > result.baseline_load


class TestTable3:
    def test_claims(self, table3_result):
        assert_claims(table3_result)

    def test_production_above_models(self, table3_result):
        assert table3_result.production_mean > table3_result.model_mean

    def test_cell_agreement(self, table3_result):
        assert table3_result.mean_absolute_deviation() < 0.15

    def test_render_has_both_rows(self, table3_result):
        text = table3_result.render()
        assert "CTC (paper)" in text and "CTC (ours)" in text


class TestFigure5:
    def test_claims_on_measured(self, table3_result):
        result = run_figure5(table3=table3_result)
        assert_claims(result)

    def test_on_published_data(self):
        """Running Co-plot on the paper's own Table 3 reproduces the
        production/model separation directly."""
        result = run_figure5(use_published=True)
        failed = [c for c in result.claims if not c.holds]
        assert not failed, "\n".join(c.render() for c in failed)


class TestLoadScaling:
    def test_scale_workload_fields(self):
        from repro.experiments.load_alteration import scale_workload
        from repro.models import LublinModel

        w = LublinModel().generate(1500, seed=0)
        fast = scale_workload(w, field="interarrival", factor=0.5)
        gaps_before = np.diff(w.column("submit_time"))
        gaps_after = np.diff(fast.column("submit_time"))
        assert gaps_after.sum() == pytest.approx(0.5 * gaps_before.sum(), rel=1e-6)

        longer = scale_workload(w, field="run_time", factor=2.0)
        assert np.allclose(longer.column("run_time"), 2.0 * w.column("run_time"))

        wider = scale_workload(w, field="used_procs", factor=2.0)
        assert wider.column("used_procs").max() <= w.machine.processors

    def test_scale_workload_validation(self):
        from repro.experiments.load_alteration import scale_workload
        from repro.models import LublinModel

        w = LublinModel().generate(200, seed=0)
        with pytest.raises(ValueError, match="factor"):
            scale_workload(w, field="run_time", factor=0.0)
        with pytest.raises(ValueError, match="field"):
            scale_workload(w, field="wait_time", factor=2.0)
