"""Integration tests for the extension experiments (paramodel, scheduling)."""

import pytest

from repro.experiments import run_parametric_model, run_scheduling


class TestParametricModelExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_parametric_model(n_jobs=5000, seed=0)

    def test_claims(self, result):
        failed = [c for c in result.claims if not c.holds]
        assert not failed, "\n".join(c.render() for c in failed)

    def test_loo_errors_accessible(self, result):
        errors = result.loo_log_errors("Ii")
        assert len(errors) >= 8
        assert all(isinstance(v, float) for v in errors.values())

    def test_selfsim_above_iid(self, result):
        assert result.hurst_selfsim > result.hurst_iid

    def test_render(self, result):
        text = result.render()
        assert "parametric workload model" in text
        assert "Leave-one-out" in text


class TestSchedulingExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scheduling(n_jobs=2500, seed=0)

    def test_claims(self, result):
        failed = [c for c in result.claims if not c.holds]
        assert not failed, "\n".join(c.render() for c in failed)

    def test_selfsim_penalty(self, result):
        """The paper's open question: self-similarity makes waits heavier
        and queues burstier at equal load and marginals."""
        assert result.selfsim_metrics.mean_wait > result.shuffled_metrics.mean_wait
        assert (
            result.selfsim_metrics.queue_depth_std
            > result.shuffled_metrics.queue_depth_std
        )

    def test_utilizations_comparable(self, result):
        assert result.selfsim_metrics.utilization == pytest.approx(
            result.shuffled_metrics.utilization, abs=0.1
        )

    def test_scheduler_hierarchy(self, result):
        assert (
            result.policy_metrics["EASY"].mean_wait
            <= result.policy_metrics["FCFS"].mean_wait
        )

    def test_allocator_hierarchy(self, result):
        waits = {k: m.mean_wait for k, m in result.allocator_metrics.items()}
        assert waits["unlimited (rank 3)"] <= waits["power-of-two (rank 1)"]

    def test_render(self, result):
        text = result.render()
        assert "self-similar" in text
        assert "EASY" in text


class TestStabilityExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import run_stability

        return run_stability(n_boot=20, seed=0)

    def test_claims(self, result):
        failed = [c for c in result.claims if not c.holds]
        assert not failed, "\n".join(c.render() for c in failed)

    def test_outliers_least_positionally_stable(self, result):
        """The batch outliers stretch the map, so they move the most when
        the variable set is resampled; LLNL (the 'average' workload)
        should be among the most stable points."""
        spread = dict(zip(result.report.labels, result.report.positional_spread))
        ranked = sorted(spread, key=spread.get, reverse=True)
        assert "LANLb" in ranked[:5]
        assert ranked.index("LLNL") >= 5

    def test_render(self, result):
        text = result.render()
        assert "Cluster persistence" in text and "positional spread" in text

    def test_validation(self):
        from repro.experiments import run_stability

        with pytest.raises(ValueError, match="n_boot"):
            run_stability(n_boot=2)
