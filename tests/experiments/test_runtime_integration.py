"""End-to-end tests of the experiments CLI on the runtime engine.

Covers the acceptance contract of the runtime subsystem: cached runs
are byte-identical to fresh ones, parallel runs match serial runs,
traces are valid JSONL with one span per task, and failures/claim
misses surface as nonzero exit codes.
"""

import json
import os

import pytest

from repro.experiments.common import Claim
from repro.experiments.registry import REGISTRY, ExperimentSpec, validate_registry
from repro.experiments.runner import EXIT_CLAIM_MISS, EXIT_OK, EXIT_TASK_FAILURE, main

#: A deliberately cheap experiment pair for end-to-end runs.
_FAST = ["figure2", "table2"]


def _run(tmp_path, tag, extra):
    out_dir = str(tmp_path / f"out-{tag}")
    argv = [*_FAST, "--quick", "--out", out_dir, "--cache-dir", str(tmp_path / f"cache-{tag}"), *extra]
    assert main(argv) == EXIT_OK
    return out_dir


# Observability sidecars carry real wall times and fresh trace ids;
# determinism is a claim about the *experiment* artifacts.
_SIDECARS = {"journal.jsonl", "trace.jsonl", "metrics.json", "profiles"}


def _read_artifacts(out_dir):
    latest = os.path.join(out_dir, "latest")
    return {
        name: open(os.path.join(latest, name), "rb").read()
        for name in sorted(os.listdir(latest))
        if name not in _SIDECARS
    }


class TestDeterminism:
    def test_cached_run_byte_identical_to_fresh(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        out1 = str(tmp_path / "o1")
        out2 = str(tmp_path / "o2")
        assert main([*_FAST, "--quick", "--out", out1, "--cache-dir", cache]) == EXIT_OK
        capsys.readouterr()
        assert main([*_FAST, "--quick", "--out", out2, "--cache-dir", cache]) == EXIT_OK
        assert "cached" in capsys.readouterr().out
        assert _read_artifacts(out1) == _read_artifacts(out2)

    def test_parallel_run_matches_serial(self, tmp_path, capsys):
        serial = _run(tmp_path, "serial", ["--jobs", "1"])
        parallel = _run(tmp_path, "parallel", ["--jobs", "4"])
        assert _read_artifacts(serial) == _read_artifacts(parallel)

    def test_seed_changes_cache_key(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["table2", "--quick", "--cache-dir", cache]) == EXIT_OK
        capsys.readouterr()
        assert main(["table2", "--quick", "--seed", "7", "--cache-dir", cache]) == EXIT_OK
        assert "cached" not in capsys.readouterr().out


class TestTrace:
    def test_trace_emits_one_span_per_task(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        cache = str(tmp_path / "cache")
        assert main([*_FAST, "--quick", "--trace", str(trace), "--cache-dir", cache]) == EXIT_OK
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        assert records[0]["type"] == "header"
        spans = [r for r in records if r["type"] == "span"]
        assert sorted(s["task"] for s in spans) == sorted(_FAST)
        for span in spans:
            assert span["status"] == "ok"
            assert span["cache_hit"] is False
            assert span["retries"] == 0
            assert span["wall_s"] > 0

    def test_trace_marks_cache_hits(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["figure2", "--cache-dir", cache]) == EXIT_OK
        trace = tmp_path / "trace.jsonl"
        assert main(["figure2", "--cache-dir", cache, "--trace", str(trace)]) == EXIT_OK
        spans = [
            json.loads(line)
            for line in trace.read_text().splitlines()
            if json.loads(line)["type"] == "span"
        ]
        assert spans[0]["cache_hit"] is True
        metrics = {
            r["name"]: r["value"]
            for r in map(json.loads, trace.read_text().splitlines())
            if r["type"] == "metric"
        }
        assert metrics["cache_hits"] == 1
        assert metrics["cache_misses"] == 0


def _boom_experiment(**kwargs):
    raise RuntimeError("synthetic experiment failure")


class _MissResult:
    def render(self):
        return "=== synthetic: always misses ==="

    @property
    def claims(self):
        return [Claim("synthetic claim", "42", "41", False)]


def _missing_experiment(**kwargs):
    return _MissResult()


@pytest.fixture
def synthetic(monkeypatch):
    """Inject one always-failing and one claim-missing experiment."""
    monkeypatch.setitem(
        REGISTRY,
        "boomx",
        ExperimentSpec(id="boomx", run=_boom_experiment, seeded=False, quick_kwargs={}),
    )
    monkeypatch.setitem(
        REGISTRY,
        "missx",
        ExperimentSpec(id="missx", run=_missing_experiment, seeded=False, quick_kwargs={}),
    )


class TestExitCodes:
    def test_experiment_exception_is_nonzero_and_batch_completes(
        self, synthetic, tmp_path, capsys
    ):
        cache = str(tmp_path / "cache")
        code = main(["boomx", "figure2", "--cache-dir", cache])
        out = capsys.readouterr().out
        assert code == EXIT_TASK_FAILURE
        assert "synthetic experiment failure" in out
        assert "Figure 2" in out, "failure aborted the rest of the batch"

    def test_claim_miss_exits_nonzero_by_default(self, synthetic, tmp_path, capsys):
        assert main(["missx", "--cache-dir", str(tmp_path / "c")]) == EXIT_CLAIM_MISS

    def test_no_fail_on_miss_downgrades_to_zero(self, synthetic, tmp_path, capsys):
        code = main(["missx", "--cache-dir", str(tmp_path / "c"), "--no-fail-on-miss"])
        out = capsys.readouterr().out
        assert code == EXIT_OK
        assert "did not hold" in out

    def test_failure_beats_claim_miss(self, synthetic, tmp_path, capsys):
        code = main(["boomx", "missx", "--cache-dir", str(tmp_path / "c")])
        assert code == EXIT_TASK_FAILURE

    def test_failed_experiment_span_recorded(self, synthetic, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        cache = str(tmp_path / "cache")
        assert main(["boomx", "--cache-dir", cache, "--trace", str(trace)]) == EXIT_TASK_FAILURE
        spans = [
            r
            for r in map(json.loads, trace.read_text().splitlines())
            if r["type"] == "span"
        ]
        assert spans[0]["task"] == "boomx"
        assert spans[0]["status"] == "failed"
        assert spans[0]["cache_hit"] is False

    def test_failures_are_not_cached(self, synthetic, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["boomx", "--cache-dir", cache]) == EXIT_TASK_FAILURE
        capsys.readouterr()
        assert main(["boomx", "--cache-dir", cache]) == EXIT_TASK_FAILURE
        assert "cached" not in capsys.readouterr().out


class TestRegistry:
    def test_registry_covers_back_compat_mapping(self):
        from repro.experiments import EXPERIMENTS

        assert set(EXPERIMENTS) == set(REGISTRY)
        for exp_id, fn in EXPERIMENTS.items():
            assert REGISTRY[exp_id].run is fn

    def test_registry_validates(self):
        validate_registry()

    def test_validate_rejects_unknown_quick_kwarg(self):
        def seeded_stub(*, seed=0):
            return None

        bad = {
            "bad": ExperimentSpec(
                id="bad", run=seeded_stub, seeded=True, quick_kwargs={"nope": 1}
            )
        }
        with pytest.raises(ValueError):
            validate_registry(bad)

    def test_validate_rejects_seeded_without_seed(self):
        bad = {
            "bad": ExperimentSpec(
                id="bad", run=lambda: None, seeded=True, quick_kwargs={}
            )
        }
        with pytest.raises(ValueError):
            validate_registry(bad)

    def test_every_spec_declares_quick_story(self):
        # Heavy experiments must shrink in quick mode; the exempt list is
        # the cheap ones whose full run is already fast.
        exempt = {"figure1", "figure2", "figure3", "param"}
        for exp_id, spec in REGISTRY.items():
            if exp_id not in exempt:
                assert spec.quick_kwargs, f"{exp_id} has no quick-mode overrides"
