"""Observability integration drills for the experiments CLI.

Three layers:

* streaming — a run with ``--out`` leaves a schema-v2 ``trace.jsonl``
  whose worker spans nest under the run span, plus ``metrics.json``;
* kill-and-inspect — a run killed mid-flight (chaos ``exit`` in serial
  mode) still leaves a readable trace covering every completed task;
* pool chaos drill — under ``--jobs 2`` a chaos ``exit`` kills a
  *worker*; the parent rebuilds the pool, finishes the batch, and
  ``--resume`` completes the killed task with journal and trace
  consistent throughout.
"""

import os
import pstats
import subprocess
import sys

import pytest

from repro.experiments.runner import EXIT_OK, EXIT_TASK_FAILURE, main
from repro.obs import read_trace
from repro.obs.cli import main as obs_main
from repro.obs.metrics import METRICS_NAME, MetricsRegistry
from repro.runtime import JOURNAL_NAME, RunJournal

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


def _run_cli(args, timeout=300):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments", *args],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def _latest(out_dir):
    return os.path.realpath(os.path.join(out_dir, "latest"))


class TestTraceStreaming:
    def test_run_streams_schema2_trace_with_nested_spans(self, tmp_path, cache_dir, capsys):
        out_dir = str(tmp_path / "results")
        assert main(["figure2", "--quick", "--out", out_dir, "--cache-dir", cache_dir]) == EXIT_OK
        capsys.readouterr()
        run_dir = _latest(out_dir)
        trace = read_trace(os.path.join(run_dir, "trace.jsonl"))
        assert trace.schema == 2
        assert not trace.truncated

        # The flat Telemetry summary span shares the task:<id> name with
        # the worker's hierarchical span; keep only spans that carry ids.
        by_name = {s["name"]: s for s in trace.spans if s.get("span_id")}
        # The run span is the root; the worker's task span hangs off it.
        root = by_name["run"]
        assert root["parent_id"] is None
        assert root["status"] == "ok"
        task = by_name["task:figure2"]
        assert task["parent_id"] == root["span_id"]
        assert task["trace_id"] == root["trace_id"]
        # Cache phases and in-experiment phases nest under the task span.
        assert by_name["cache.compute"]["parent_id"] == task["span_id"]
        fit = by_name["figure2.fit"]
        solve = by_name["mds.solve"]
        assert solve["parent_id"] == fit["span_id"]
        assert solve["n_iter"] >= 1

    def test_run_flushes_metrics_json(self, tmp_path, cache_dir, capsys):
        out_dir = str(tmp_path / "results")
        assert main(["figure2", "--quick", "--out", out_dir, "--cache-dir", cache_dir]) == EXIT_OK
        capsys.readouterr()
        metrics_path = os.path.join(_latest(out_dir), METRICS_NAME)
        reg = MetricsRegistry.from_json(open(metrics_path).read())
        assert reg.counter("cache_misses_total") == 1
        assert reg.counter("tasks_ok_total") == 1
        assert reg.gauges["run_wall_seconds"] > 0

    def test_pool_mode_trace_covers_all_tasks(self, tmp_path, cache_dir, capsys):
        out_dir = str(tmp_path / "results")
        code = main(
            ["figure2", "table1", "--quick", "--jobs", "2", "--out", out_dir,
             "--cache-dir", cache_dir]
        )
        assert code == EXIT_OK
        capsys.readouterr()
        trace = read_trace(os.path.join(_latest(out_dir), "trace.jsonl"))
        assert set(trace.task_spans) == {"figure2", "table1"}
        # Worker spans from both processes interleave in one file without
        # corrupting any line.
        assert not trace.truncated

    def test_metrics_out_writes_prometheus_text(self, tmp_path, cache_dir, capsys):
        prom = tmp_path / "metrics.prom"
        assert main(["figure2", "--quick", "--cache-dir", cache_dir,
                     "--metrics-out", str(prom)]) == EXIT_OK
        capsys.readouterr()
        text = prom.read_text()
        assert "# TYPE repro_cache_misses_total counter" in text
        assert "repro_tasks_ok_total 1" in text

    def test_profile_writes_loadable_pstats(self, tmp_path, cache_dir, capsys):
        out_dir = str(tmp_path / "results")
        assert main(["figure2", "--quick", "--out", out_dir, "--cache-dir", cache_dir,
                     "--profile"]) == EXIT_OK
        capsys.readouterr()
        stats = pstats.Stats(os.path.join(_latest(out_dir), "profiles", "figure2.pstats"))
        assert stats.total_calls > 0

    def test_profile_without_out_is_usage_error(self, cache_dir):
        with pytest.raises(SystemExit):
            main(["figure2", "--quick", "--cache-dir", cache_dir, "--profile"])


class TestKillAndInspect:
    def test_killed_run_leaves_readable_trace_covering_completed_tasks(
        self, tmp_path, cache_dir
    ):
        out_dir = str(tmp_path / "results")
        # Serial run: figure2 completes, then the exit fault takes the
        # whole process down inside table2 — a kill -9 mid-run.
        proc = _run_cli(
            ["figure2", "table2", "--quick", "--jobs", "1", "--out", out_dir,
             "--cache-dir", cache_dir, "--chaos", "1:table2=exit"]
        )
        assert proc.returncode == 70, proc.stderr

        trace = read_trace(os.path.join(_latest(out_dir), "trace.jsonl"))
        # Every task that completed before the kill has its span on disk.
        assert trace.task_spans["figure2"]["status"] == "ok"
        assert "table2" not in trace.task_spans
        # No root "run" span: its absence is the killed-run marker.
        assert "run" not in {s["name"] for s in trace.spans}
        # The fault breadcrumb survives even though the process died
        # immediately after emitting it.
        fault_events = [e for e in trace.events if e.get("kind") == "fault_fired"]
        assert fault_events and fault_events[0]["task"] == "table2"

    def test_summarize_renders_killed_run(self, tmp_path, cache_dir, capsys):
        out_dir = str(tmp_path / "results")
        proc = _run_cli(
            ["figure2", "table2", "--quick", "--out", out_dir,
             "--cache-dir", cache_dir, "--chaos", "1:table2=exit"]
        )
        assert proc.returncode == 70, proc.stderr
        assert obs_main(["summarize", _latest(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "task:figure2" in out


class TestPoolChaosDrill:
    def test_worker_death_pool_rebuild_and_resume(self, tmp_path, cache_dir, capsys):
        out_dir = str(tmp_path / "results")
        # Pool mode: the exit fault kills the *worker* running table2.
        # The parent absorbs BrokenProcessPool and survives; a broken
        # pool charges every in-flight attempt, so figure2 may land as
        # either ok (finished before the kill) or failed (in flight).
        proc = _run_cli(
            ["figure2", "table2", "--quick", "--jobs", "2", "--out", out_dir,
             "--cache-dir", cache_dir, "--chaos", "1:table2=exit"]
        )
        assert proc.returncode == EXIT_TASK_FAILURE, proc.stderr

        run_dir = _latest(out_dir)
        _meta, entries = RunJournal.load(os.path.join(run_dir, JOURNAL_NAME))
        # The journal stayed consistent through the worker death: every
        # task has a definite outcome, and the chaos victim failed.
        assert set(entries) == {"figure2", "table2"}
        assert entries["table2"]["status"] == "failed"
        assert entries["figure2"]["status"] in {"ok", "failed"}

        trace = read_trace(os.path.join(run_dir, "trace.jsonl"))
        # The parent survived, so the run span closed (with error status).
        run_spans = [s for s in trace.spans if s["name"] == "run"]
        assert run_spans and run_spans[0]["status"] == "error"

        # Resume without chaos: journaled-ok tasks are served from the
        # journal + cache, the rest re-execute, and the run completes.
        assert main(["--resume", run_dir, "--cache-dir", cache_dir]) == EXIT_OK
        out = capsys.readouterr().out
        assert "task(s) already complete" in out
        _meta, entries = RunJournal.load(os.path.join(run_dir, JOURNAL_NAME))
        assert entries["figure2"]["status"] == "ok"
        assert entries["table2"]["status"] == "ok"
        # The resumed run appended to the same streamed trace; it now
        # covers both tasks and stayed readable throughout.
        trace = read_trace(os.path.join(run_dir, "trace.jsonl"))
        assert trace.task_spans["table2"]["status"] == "ok"
        assert not trace.truncated


class TestObsDiffOnRealRuns:
    def test_warm_vs_cold_run_diff_is_clean(self, tmp_path, cache_dir, capsys):
        out_a = str(tmp_path / "a")
        out_b = str(tmp_path / "b")
        assert main(["figure2", "--quick", "--out", out_a, "--cache-dir", cache_dir]) == EXIT_OK
        assert main(["figure2", "--quick", "--out", out_b, "--cache-dir", cache_dir]) == EXIT_OK
        capsys.readouterr()
        # Cold vs warm: compute_s carries over, so no phantom regression
        # or improvement from cache luck.
        assert obs_main(["diff", _latest(out_a), _latest(out_b)]) == 0
        out = capsys.readouterr().out
        assert "cache hit rate: 0% -> 100%" in out


class TestJournalDrivenScheduling:
    def test_fresh_run_orders_by_previous_journal(self, tmp_path, cache_dir, capsys):
        out_dir = tmp_path / "results"
        # Fabricate a previous run whose journal says table1 dominated.
        prior = out_dir / "run-prior"
        prior.mkdir(parents=True)
        journal = RunJournal(prior / JOURNAL_NAME)
        journal.record("figure2", status="ok", wall_s=0.1)
        journal.record("table1", status="ok", wall_s=99.0)
        os.symlink("run-prior", out_dir / "latest", target_is_directory=True)

        assert main(["figure2", "table1", "--quick", "--out", str(out_dir),
                     "--cache-dir", cache_dir]) == EXIT_OK
        capsys.readouterr()
        trace = read_trace(os.path.join(_latest(str(out_dir)), "trace.jsonl"))
        sched = [e for e in trace.events if e.get("kind") == "schedule"]
        assert sched and sched[0]["policy"] == "longest_first"
        assert sched[0]["order"] == ["table1", "figure2"]
        # Both tasks still ran to completion in the new order.
        assert set(trace.task_spans) == {"figure2", "table1"}

    def test_no_history_keeps_registry_order_silently(self, tmp_path, cache_dir, capsys):
        out_dir = str(tmp_path / "results")
        assert main(["figure2", "table1", "--quick", "--out", out_dir,
                     "--cache-dir", cache_dir]) == EXIT_OK
        capsys.readouterr()
        trace = read_trace(os.path.join(_latest(out_dir), "trace.jsonl"))
        assert not [e for e in trace.events if e.get("kind") == "schedule"]
