"""Kill-and-resume drills for the experiments CLI.

The headline test launches the CLI in a subprocess with a chaos ``exit``
fault armed on the second task: the process dies mid-run exactly as a
``kill -9`` would, then ``--resume`` reopens the journal and completes
without recomputing what already landed in the cache.
"""

import os
import shutil
import subprocess
import sys

import pytest

from repro.experiments.runner import EXIT_OK, EXIT_TASK_FAILURE, main
from repro.runtime import JOURNAL_NAME, RunJournal

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


def _run_cli(args, timeout=300):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments", *args],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestKillAndResume:
    def test_killed_run_resumes_without_recomputing(self, tmp_path, cache_dir, capsys):
        out_dir = str(tmp_path / "results")
        # Serial run, figure2 first; the exit fault fires inside table2's
        # attempt and takes the whole process down, exactly like kill -9.
        proc = _run_cli(
            [
                "figure2",
                "table2",
                "--quick",
                "--jobs",
                "1",
                "--out",
                out_dir,
                "--cache-dir",
                cache_dir,
                "--chaos",
                "1:table2=exit",
            ]
        )
        assert proc.returncode == 70, proc.stderr

        run_dir = os.path.realpath(os.path.join(out_dir, "latest"))
        _meta, entries = RunJournal.load(os.path.join(run_dir, JOURNAL_NAME))
        assert entries.get("figure2", {}).get("status") == "ok"
        assert entries.get("table2", {}).get("status") != "ok"

        assert main(["--resume", run_dir, "--cache-dir", cache_dir]) == EXIT_OK
        out = capsys.readouterr().out
        assert "Resuming" in out
        assert "1 of 2 task(s) already complete, 1 to run" in out
        assert "[figure2 cached" in out, "resume must serve the journaled task from cache"
        assert "Table 2" in out
        for exp in ("figure2", "table2"):
            assert os.path.exists(os.path.join(run_dir, f"{exp}.txt"))

    def test_resume_adopts_journal_meta(self, tmp_path, cache_dir, capsys):
        out_dir = str(tmp_path / "results")
        assert main(["figure2", "--quick", "--out", out_dir, "--cache-dir", cache_dir]) == EXIT_OK
        run_dir = os.path.realpath(os.path.join(out_dir, "latest"))
        capsys.readouterr()
        # No ids given: the journal's meta supplies seed/quick/ids.
        assert main(["--resume", run_dir, "--cache-dir", cache_dir]) == EXIT_OK
        out = capsys.readouterr().out
        assert "1 of 1 task(s) already complete, 0 to run" in out
        assert "[figure2 cached" in out

    def test_resume_recomputes_when_cache_entry_vanished(self, tmp_path, cache_dir, capsys):
        out_dir = str(tmp_path / "results")
        assert main(["figure2", "--quick", "--out", out_dir, "--cache-dir", cache_dir]) == EXIT_OK
        run_dir = os.path.realpath(os.path.join(out_dir, "latest"))
        shutil.rmtree(cache_dir)  # e.g. an overeager prune between crash and resume
        capsys.readouterr()
        assert main(["--resume", run_dir, "--cache-dir", cache_dir]) == EXIT_OK
        out = capsys.readouterr().out
        assert "[resume] figure2: journaled ok but cache entry missing; recomputing" in out
        assert "[figure2 finished in" in out

    def test_resume_rejects_missing_run_dir(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--resume", str(tmp_path / "nope")])

    def test_resume_rejects_out_flag(self, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        with pytest.raises(SystemExit):
            main(["--resume", str(run_dir), "--out", str(tmp_path / "other")])


class TestChaosCli:
    def test_chaos_failure_sets_task_exit_code(self, cache_dir, capsys):
        code = main(
            ["figure2", "--quick", "--cache-dir", cache_dir, "--chaos", "5:figure2=raise"]
        )
        assert code == EXIT_TASK_FAILURE
        out = capsys.readouterr().out
        assert "figure2: FAILED" in out
        assert "InjectedFault" in out

    def test_chaos_with_retries_recovers(self, cache_dir, capsys):
        code = main(
            [
                "figure2",
                "--quick",
                "--cache-dir",
                cache_dir,
                "--retries",
                "2",
                "--chaos",
                "5:figure2=raise,max_hits=1",
            ]
        )
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "[figure2 finished in" in out

    def test_bad_chaos_spec_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main(["figure2", "--chaos", "7:kind=meteor"])
