"""Tests for the experiments CLI."""

import os

import pytest

from repro.experiments.runner import main


class TestRunner:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for exp in ("table1", "figure1", "figure5", "param", "load"):
            assert exp in out

    def test_unknown_experiment(self, capsys):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_single_quick_run(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "[OK ]" in out

    def test_out_dir_writes_artifacts(self, tmp_path, capsys):
        out_dir = str(tmp_path / "results")
        assert main(["figure2", "--out", out_dir]) == 0
        assert os.path.exists(os.path.join(out_dir, "figure2.txt"))
        assert os.path.exists(os.path.join(out_dir, "figure2.csv"))
        assert os.path.exists(os.path.join(out_dir, "figure2.svg"))

    def test_quick_flag_threads_n_jobs(self, capsys):
        assert main(["table2", "--quick"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_report_scorecard(self, tmp_path, capsys):
        report = tmp_path / "score.md"
        assert main(["figure2", "--report", str(report)]) == 0
        text = report.read_text()
        assert "Reproduction scorecard" in text
        assert "claims hold" in text
        assert "| figure2 |" in text
