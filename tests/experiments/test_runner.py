"""Tests for the experiments CLI."""

import os

import pytest

from repro.experiments.runner import main


@pytest.fixture
def cache_dir(tmp_path):
    """Isolated result cache so tests never touch results/cache."""
    return str(tmp_path / "cache")


class TestRunner:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for exp in ("table1", "figure1", "figure5", "param", "load"):
            assert exp in out

    def test_unknown_experiment(self, capsys):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_bad_jobs(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure2", "--jobs", "0"])

    def test_single_quick_run(self, cache_dir, capsys):
        assert main(["figure2", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "[OK ]" in out

    def test_out_dir_writes_into_stamped_run_dir(self, tmp_path, cache_dir, capsys):
        out_dir = str(tmp_path / "results")
        assert main(["figure2", "--out", out_dir, "--cache-dir", cache_dir]) == 0
        latest = os.path.join(out_dir, "latest")
        assert os.path.islink(latest)
        run_dir = os.path.realpath(latest)
        assert os.path.basename(run_dir).startswith("run-")
        assert "seed0" in os.path.basename(run_dir)
        for ext in ("txt", "csv", "svg"):
            assert os.path.exists(os.path.join(latest, f"figure2.{ext}"))

    def test_successive_runs_do_not_overwrite(self, tmp_path, cache_dir, capsys):
        out_dir = str(tmp_path / "results")
        assert main(["figure2", "--out", out_dir, "--cache-dir", cache_dir]) == 0
        first = os.path.realpath(os.path.join(out_dir, "latest"))
        assert main(["figure2", "--out", out_dir, "--cache-dir", cache_dir]) == 0
        second = os.path.realpath(os.path.join(out_dir, "latest"))
        assert first != second
        assert os.path.exists(os.path.join(first, "figure2.txt"))
        assert os.path.exists(os.path.join(second, "figure2.txt"))

    def test_quick_flag_threads_n_jobs(self, cache_dir, capsys):
        assert main(["table2", "--quick", "--cache-dir", cache_dir]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_report_scorecard(self, tmp_path, cache_dir, capsys):
        report = tmp_path / "score.md"
        assert main(["figure2", "--report", str(report), "--cache-dir", cache_dir]) == 0
        text = report.read_text()
        assert "Reproduction scorecard" in text
        assert "claims hold" in text
        assert "| figure2 |" in text

    def test_second_run_hits_cache(self, cache_dir, capsys):
        assert main(["figure2", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["figure2", "--cache-dir", cache_dir]) == 0
        assert "cached" in capsys.readouterr().out

    def test_no_cache_forces_recompute(self, cache_dir, capsys):
        assert main(["figure2", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["figure2", "--cache-dir", cache_dir, "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "cached" not in out
        assert "finished in" in out
