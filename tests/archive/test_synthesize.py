"""Tests for the log synthesizer — the DESIGN.md §4.1 substitution."""

import math

import numpy as np
import pytest

from repro.archive import spec_for, synthesize_all, synthesize_workload
from repro.archive.targets import PRODUCTION_NAMES, TABLE1, hurst_target
from repro.selfsim import hurst_summary, workload_series
from repro.workload import compute_statistics


@pytest.fixture(scope="module")
def ctc():
    return synthesize_workload("CTC", n_jobs=8000, seed=0)


@pytest.fixture(scope="module")
def ctc_stats(ctc):
    return compute_statistics(ctc).by_sign()


class TestSpec:
    def test_spec_fields(self):
        spec = spec_for("LANL", n_jobs=500)
        assert spec.machine.name == "LANL"
        assert spec.n_jobs == 500
        assert spec.runtime.median() == pytest.approx(68.0, rel=1e-6)
        assert set(spec.hurst) == {"used_procs", "run_time", "cpu_time", "interarrival"}

    def test_sublog_spec_inherits_parent_hurst(self):
        spec = spec_for("L2")
        assert spec.hurst["run_time"] == pytest.approx(hurst_target("LANL", "run_time"))

    def test_unknown_workload(self):
        with pytest.raises(KeyError, match="unknown workload"):
            spec_for("MARS")

    def test_too_few_jobs(self):
        with pytest.raises(ValueError, match="n_jobs"):
            spec_for("CTC", n_jobs=10)


class TestOrderStatistics:
    """The synthesized paths must reproduce the published order statistics
    essentially exactly (rank remap)."""

    @pytest.mark.parametrize("sign", ["Rm", "Ri", "Pm", "Pi", "Cm", "Ci", "Im", "Ii"])
    def test_ctc_cell(self, ctc_stats, sign):
        target = TABLE1["CTC"][sign]
        assert ctc_stats[sign] == pytest.approx(target, rel=0.1)

    def test_loads(self, ctc_stats):
        assert ctc_stats["RL"] == pytest.approx(0.56, rel=0.08)
        assert ctc_stats["CL"] == pytest.approx(0.47, rel=0.08)

    def test_population_ratios(self, ctc_stats):
        assert ctc_stats["U"] == pytest.approx(0.0086, rel=0.15)
        assert ctc_stats["C"] == pytest.approx(0.79, abs=0.03)

    def test_na_fields_stay_missing(self):
        nasa = synthesize_workload("NASA", n_jobs=2000, seed=0)
        stats = compute_statistics(nasa)
        # NASA: RL published as N/A -> the synthesizer calibrates the
        # stream's runtime load to the published CPU load (rule 1 in
        # reverse), so the two measured loads agree.
        assert stats.runtime_load == pytest.approx(stats.cpu_load, rel=0.15)
        assert math.isnan(stats.pct_completed)  # C is N/A for NASA

    def test_llnl_cpu_missing(self):
        llnl = synthesize_workload("LLNL", n_jobs=2000, seed=0)
        assert np.all(llnl.column("avg_cpu_time") < 0)


class TestStructure:
    def test_sizes_legal_for_machine(self):
        lanl = synthesize_workload("LANLb", n_jobs=3000, seed=1)
        procs = lanl.column("used_procs")
        assert np.all(procs >= 32)
        assert set(np.unique(procs)) <= {32, 64, 128, 256, 512, 1024}

    def test_submit_monotone(self, ctc):
        assert np.all(np.diff(ctc.column("submit_time")) >= 0)

    def test_deterministic(self):
        a = synthesize_workload("KTH", n_jobs=1000, seed=3)
        b = synthesize_workload("KTH", n_jobs=1000, seed=3)
        assert np.array_equal(a.column("run_time"), b.column("run_time"))

    def test_size_runtime_positively_coupled(self, ctc):
        procs = ctc.column("used_procs").astype(float)
        run = ctc.column("run_time")
        corr = np.corrcoef(np.log(procs), np.log(run))[0, 1]
        assert corr > 0.1

    def test_spec_object_accepted(self):
        spec = spec_for("SDSCi", n_jobs=1000)
        w = synthesize_workload(spec, seed=5)
        assert len(w) == 1000
        assert w.name == "SDSCi"


class TestSelfSimilarity:
    @pytest.mark.parametrize("attribute", ["run_time", "interarrival"])
    def test_hurst_tracks_target(self, attribute):
        w = synthesize_workload("LANL", n_jobs=16000, seed=2)
        target = hurst_target("LANL", attribute)
        measured = np.mean(list(hurst_summary(workload_series(w, attribute)).values()))
        assert measured == pytest.approx(target, abs=0.12)

    def test_low_hurst_workload_stays_low(self):
        w = synthesize_workload("NASA", n_jobs=16000, seed=2)
        target = hurst_target("NASA", "interarrival")  # ~0.49
        measured = np.mean(
            list(hurst_summary(workload_series(w, "interarrival")).values())
        )
        assert measured < 0.6
        assert measured == pytest.approx(target, abs=0.12)


class TestSynthesizeAll:
    def test_all_production(self):
        logs = synthesize_all(n_jobs=500, seed=0)
        assert set(logs) == set(PRODUCTION_NAMES)
        for name, w in logs.items():
            assert w.name == name
            assert len(w) == 500

    def test_with_sublogs(self):
        logs = synthesize_all(n_jobs=500, seed=0, include_sublogs=True)
        assert len(logs) == 18
        assert "L3" in logs and "S4" in logs

    def test_independent_streams(self):
        logs = synthesize_all(n_jobs=500, seed=0)
        a = logs["LANL"].column("run_time")
        b = logs["LANLb"].column("run_time")
        assert not np.array_equal(a, b)


class TestExportArchive:
    def test_export_and_reload(self, tmp_path):
        from repro.archive import export_archive
        from repro.workload import read_swf

        paths = export_archive(tmp_path, n_jobs=500, seed=0)
        assert set(paths) == set(PRODUCTION_NAMES)
        for name, path in paths.items():
            assert path.endswith(".swf.gz")
        back = read_swf(paths["LANL"])
        assert len(back) == 500
        assert back.machine.processors == 1024
        index = (tmp_path / "INDEX.txt").read_text()
        assert "CTC" in index and "seed=0" in index

    def test_uncompressed_mode(self, tmp_path):
        from repro.archive import export_archive
        from repro.workload import read_swf

        paths = export_archive(tmp_path, n_jobs=500, seed=0, compress=False)
        assert paths["CTC"].endswith(".swf")
        assert len(read_swf(paths["CTC"])) == 500
