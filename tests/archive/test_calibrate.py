"""Tests for the synthesizer calibration helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.archive.calibrate import (
    scale_tail_to_mean,
    solve_lognormal_marginal,
    solve_size_distribution,
)
from repro.archive.machines import MACHINES, Machine


class TestLognormalMarginal:
    def test_hits_both_targets(self):
        d = solve_lognormal_marginal(68.0, 9064.0)
        assert d.median() == pytest.approx(68.0, rel=1e-9)
        assert d.interval(0.9) == pytest.approx(9064.0, rel=1e-6)

    @given(
        median=st.floats(min_value=1.0, max_value=2000.0),
        ratio=st.floats(min_value=1.5, max_value=1000.0),
    )
    def test_property_roundtrip(self, median, ratio):
        d = solve_lognormal_marginal(median, median * ratio)
        assert d.median() == pytest.approx(median, rel=1e-6)


class TestSizeDistribution:
    def test_pow2_machine_support(self):
        lanl = MACHINES["LANL"]
        d = solve_size_distribution(lanl, 64.0, 224.0)
        values = set(d.values.astype(int))
        assert values <= {32, 64, 128, 256, 512, 1024}

    def test_pow2_machine_median(self):
        lanl = MACHINES["LANL"]
        d = solve_size_distribution(lanl, 64.0, 224.0)
        assert d.median() == 64.0

    def test_general_machine_hits_median(self):
        sdsc = MACHINES["SDSC"]
        d = solve_size_distribution(sdsc, 5.0, 63.0)
        assert d.median() == pytest.approx(5.0, abs=1.0)

    def test_support_clipped_to_machine(self):
        kth = MACHINES["KTH"]
        d = solve_size_distribution(kth, 3.0, 31.0)
        assert d.values.max() <= 100

    def test_median_clipped_into_support(self):
        tiny = Machine("tiny", "toy", 4, 1, 1, False, 1)
        d = solve_size_distribution(tiny, 100.0, 500.0)
        assert 1 <= d.median() <= 4

    def test_single_size_machine(self):
        one = Machine("one", "toy", 2, 1, 1, True, 2)
        d = solve_size_distribution(one, 2.0, 1.0)
        assert np.array_equal(d.values, [2.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_size_distribution(MACHINES["CTC"], -1.0, 10.0)


class TestScaleTail:
    def test_hits_target_mean(self, rng):
        x = rng.lognormal(3.0, 1.5, 5000)
        target = x.mean() * 2.0
        scaled, exact = scale_tail_to_mean(x, target)
        assert exact
        assert scaled.mean() == pytest.approx(target, rel=1e-9)

    def test_quantiles_preserved(self, rng):
        x = rng.lognormal(3.0, 1.5, 5000)
        scaled, _ = scale_tail_to_mean(x, x.mean() * 3.0, tail_q=0.96)
        for q in (0.05, 0.5, 0.95):
            assert np.quantile(scaled, q) == pytest.approx(np.quantile(x, q), rel=1e-6)

    def test_shrinking_keeps_order(self, rng):
        x = rng.lognormal(3.0, 2.0, 5000)
        target = x.mean() * 0.7
        scaled, exact = scale_tail_to_mean(x, target)
        boundary = np.quantile(x, 0.95)
        assert np.all(scaled[x > boundary] >= boundary - 1e-9)
        if exact:
            assert scaled.mean() == pytest.approx(target, rel=1e-9)

    def test_infeasible_shrink_flags(self, rng):
        x = rng.lognormal(3.0, 0.5, 2000)
        # Target below what collapsing the whole tail can reach.
        scaled, exact = scale_tail_to_mean(x, x.mean() * 0.5)
        assert not exact
        assert scaled.mean() > x.mean() * 0.5

    def test_body_untouched(self, rng):
        x = rng.lognormal(3.0, 1.0, 2000)
        scaled, _ = scale_tail_to_mean(x, x.mean() * 2.0)
        boundary = np.quantile(x, 0.95)
        body = x <= boundary
        assert np.array_equal(scaled[body], x[body])

    @given(st.floats(min_value=0.5, max_value=5.0))
    def test_property_order_preserved(self, factor):
        rng = np.random.default_rng(9)
        x = rng.lognormal(2.0, 1.2, 1000)
        scaled, _ = scale_tail_to_mean(x, x.mean() * factor)
        # Weak order preservation: collapsing the tail onto the boundary
        # may create ties, but never inverts a strict order.
        order = np.argsort(x, kind="stable")
        assert np.all(np.diff(scaled[order]) >= -1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            scale_tail_to_mean([1.0, 2.0], -1.0)
        with pytest.raises(ValueError):
            scale_tail_to_mean([1.0], 1.0)


class TestMachines:
    def test_six_machines(self):
        assert set(MACHINES) == {"CTC", "KTH", "LANL", "LLNL", "NASA", "SDSC"}

    def test_info_conversion(self):
        info = MACHINES["CTC"].info()
        assert info.processors == 512
        assert info.scheduler_flexibility == 2
        assert info.allocation_flexibility == 3

    def test_machine_for_suffixes(self):
        from repro.archive.machines import machine_for

        assert machine_for("LANLi").name == "LANL"
        assert machine_for("SDSCb").name == "SDSC"
        assert machine_for("L3").name == "LANL"
        assert machine_for("S1").name == "SDSC"
        assert machine_for("CTC").name == "CTC"
        with pytest.raises(KeyError):
            machine_for("XYZ")

    def test_table1_consistency(self):
        """Machine metadata agrees with the Table 1 columns."""
        from repro.archive.targets import TABLE1

        for name, machine in MACHINES.items():
            assert TABLE1[name]["MP"] == machine.processors
            assert TABLE1[name]["SF"] == machine.scheduler_flexibility
            assert TABLE1[name]["AL"] == machine.allocation_flexibility
