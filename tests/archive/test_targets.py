"""Tests for the embedded paper tables."""

import numpy as np
import pytest

from repro.archive.targets import (
    ESTIMATOR_KEYS,
    MODEL_TABLE3_NAMES,
    PRODUCTION_NAMES,
    TABLE1,
    TABLE2,
    TABLE2_NAMES,
    TABLE2_PERIODS,
    TABLE3,
    TABLE3_ESTIMATORS,
    hurst_target,
    table1_row,
    table2_row,
    table3_matrix,
    table3_row,
)


class TestTable1:
    def test_ten_workloads(self):
        assert len(TABLE1) == 10
        assert set(TABLE1) == set(PRODUCTION_NAMES)

    def test_every_row_has_18_variables(self):
        for row in TABLE1.values():
            assert len(row) == 18

    def test_spot_values_from_paper(self):
        assert TABLE1["CTC"]["Rm"] == 960
        assert TABLE1["KTH"]["MP"] == 100
        assert TABLE1["LANLb"]["Pi"] == 480.0
        assert TABLE1["SDSCi"]["RL"] == 0.01
        assert TABLE1["NASA"]["Cm"] == 19
        assert TABLE1["SDSCb"]["Ci"] == 1754212

    def test_na_cells(self):
        assert TABLE1["NASA"]["RL"] is None
        assert TABLE1["LLNL"]["CL"] is None
        assert TABLE1["CTC"]["E"] is None
        assert TABLE1["LLNL"]["C"] is None

    def test_row_accessor_copies(self):
        row = table1_row("CTC")
        row["Rm"] = 0
        assert TABLE1["CTC"]["Rm"] == 960

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown production workload"):
            table1_row("XYZ")

    def test_flexibility_ranks_valid(self):
        for row in TABLE1.values():
            assert row["SF"] in (1, 2, 3)
            assert row["AL"] in (1, 2, 3)


class TestTable2:
    def test_eight_sublogs(self):
        assert TABLE2_NAMES == ("L1", "L2", "L3", "L4", "S1", "S2", "S3", "S4")

    def test_periods_cover_all(self):
        assert set(TABLE2_PERIODS) == set(TABLE2_NAMES)
        assert TABLE2_PERIODS["L3"] == "10/95-3/96"

    def test_spot_values(self):
        assert TABLE2["L3"]["Rm"] == 643  # the end-of-life regime change
        assert TABLE2["S2"]["Im"] == 39
        assert TABLE2["L4"]["Pm"] == 128

    def test_machine_constants_injected(self):
        assert TABLE2["L1"]["MP"] == 1024
        assert TABLE2["S1"]["MP"] == 416

    def test_sdsc_executables_na(self):
        for name in ("S1", "S2", "S3", "S4"):
            assert TABLE2[name]["E"] is None

    def test_accessor(self):
        assert table2_row("S4")["Rm"] == 527
        with pytest.raises(KeyError):
            table2_row("L9")


class TestTable3:
    def test_fifteen_rows(self):
        assert len(TABLE3) == 15
        assert set(TABLE3) == set(PRODUCTION_NAMES) | set(MODEL_TABLE3_NAMES)

    def test_twelve_estimators_each(self):
        for row in TABLE3.values():
            assert set(row) == set(TABLE3_ESTIMATORS)

    def test_spot_values(self):
        assert TABLE3["LANLi"]["rp"] == 0.96
        assert TABLE3["Downey"]["vp"] == 0.49
        assert TABLE3["Feitelson96"]["rr"] == 0.26

    def test_estimator_keys_cover_grid(self):
        methods = {m for m, _ in ESTIMATOR_KEYS.values()}
        attrs = {a for _, a in ESTIMATOR_KEYS.values()}
        assert methods == {"rs", "variance", "periodogram"}
        assert attrs == {"used_procs", "run_time", "cpu_time", "interarrival"}

    def test_matrix_shape(self):
        m, rows, cols = table3_matrix()
        assert m.shape == (15, 12)
        assert rows[0] == "CTC" and cols[0] == "rp"
        assert m[0, 0] == 0.71

    def test_hurst_target_is_mean_of_three(self):
        expected = np.mean([0.71, 0.71, 0.68])
        assert hurst_target("CTC", "used_procs") == pytest.approx(expected)

    def test_hurst_target_validation(self):
        with pytest.raises(KeyError):
            hurst_target("CTC", "memory")
        with pytest.raises(KeyError):
            table3_row("Nobody")

    def test_paper_headline_production_vs_models(self):
        """The embedded data itself exhibits the paper's Section 9 claim."""
        prod = np.mean([list(TABLE3[n].values()) for n in PRODUCTION_NAMES])
        model = np.mean([list(TABLE3[n].values()) for n in MODEL_TABLE3_NAMES])
        assert prod > model + 0.1
