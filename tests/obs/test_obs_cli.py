"""CLI tests for ``python -m repro.obs``: exit codes and output formats."""

import json

import pytest

from repro.obs import TraceWriter, Tracer, MetricsRegistry
from repro.obs.cli import EXIT_OK, EXIT_REGRESSION, main
from repro.obs.metrics import METRICS_NAME


def _make_run(tmp_path, name, tasks):
    """A run directory with a trace.jsonl of task-summary spans."""
    run_dir = tmp_path / name
    run_dir.mkdir()
    writer = TraceWriter(run_dir / "trace.jsonl", trace_id=name)
    tracer = Tracer(writer, trace_id=name)
    for task, attrs in tasks.items():
        writer.emit(
            {
                "type": "span",
                "name": f"task:{task}",
                "task": task,
                "trace_id": name,
                "span_id": None,
                "parent_id": None,
                "status": attrs.get("status", "ok"),
                "ts": attrs.get("ts", 1.0),
                "wall_s": attrs.get("wall_s", 0.0),
                **{k: v for k, v in attrs.items() if k not in ("status", "ts", "wall_s")},
            }
        )
    del tracer
    return str(run_dir)


class TestSummarize:
    def test_summarize_run_dir(self, tmp_path, capsys):
        run = _make_run(tmp_path, "run-a", {"figure2": {"wall_s": 1.0}})
        assert main(["summarize", run]) == EXIT_OK
        out = capsys.readouterr().out
        assert "schema v2" in out
        assert "1 task(s)" in out
        assert "task:figure2" in out

    def test_summarize_missing_path_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["summarize", str(tmp_path / "nope")])
        assert exc.value.code == 2


class TestDiff:
    def test_clean_diff_exits_zero(self, tmp_path, capsys):
        a = _make_run(tmp_path, "run-a", {"x": {"wall_s": 1.0}})
        b = _make_run(tmp_path, "run-b", {"x": {"wall_s": 1.05}})
        assert main(["diff", a, b]) == EXIT_OK
        assert "no regressions" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        a = _make_run(tmp_path, "run-a", {"x": {"wall_s": 1.0}})
        b = _make_run(tmp_path, "run-b", {"x": {"wall_s": 2.0}})
        assert main(["diff", a, b]) == EXIT_REGRESSION
        assert "REGRESSION: x" in capsys.readouterr().out

    def test_threshold_flag_loosens_the_gate(self, tmp_path, capsys):
        a = _make_run(tmp_path, "run-a", {"x": {"wall_s": 1.0}})
        b = _make_run(tmp_path, "run-b", {"x": {"wall_s": 2.0}})
        # 2x slower but the gate asks for 3x.
        assert main(["diff", a, b, "--threshold", "2.0"]) == EXIT_OK
        capsys.readouterr()

    def test_min_wall_flag_filters_jitter(self, tmp_path, capsys):
        a = _make_run(tmp_path, "run-a", {"x": {"wall_s": 0.01}})
        b = _make_run(tmp_path, "run-b", {"x": {"wall_s": 0.04}})
        assert main(["diff", a, b, "--min-wall", "0.1"]) == EXIT_OK
        assert main(["diff", a, b, "--min-wall", "0.0"]) == EXIT_REGRESSION
        capsys.readouterr()

    def test_negative_threshold_is_usage_error(self, tmp_path):
        a = _make_run(tmp_path, "run-a", {})
        with pytest.raises(SystemExit) as exc:
            main(["diff", a, a, "--threshold", "-1"])
        assert exc.value.code == 2


class TestExport:
    def test_prom_prefers_flushed_metrics_json(self, tmp_path, capsys):
        run = _make_run(tmp_path, "run-a", {"x": {"wall_s": 1.0}})
        reg = MetricsRegistry()
        reg.inc("cache_hits_total", 9)
        (tmp_path / "run-a" / METRICS_NAME).write_text(reg.to_json())
        assert main(["export", run, "--format", "prom"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "repro_cache_hits_total 9" in out

    def test_prom_rebuilds_from_trace_when_no_metrics_json(self, tmp_path, capsys):
        run = _make_run(tmp_path, "run-a", {"x": {"wall_s": 1.0}})
        assert main(["export", run, "--format", "prom"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "repro_task_wall_seconds_count 1" in out

    def test_csv_has_one_row_per_span(self, tmp_path, capsys):
        run = _make_run(tmp_path, "run-a", {"x": {"wall_s": 1.0}, "y": {"wall_s": 2.0}})
        assert main(["export", run, "--format", "csv"]) == EXIT_OK
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("name,task,status")
        assert len(lines) == 3

    def test_output_flag_writes_file(self, tmp_path, capsys):
        run = _make_run(tmp_path, "run-a", {"x": {"wall_s": 1.0}})
        dest = tmp_path / "metrics.prom"
        assert main(["export", run, "--format", "prom", "--output", str(dest)]) == EXIT_OK
        capsys.readouterr()
        assert dest.exists()
        assert "task_wall_seconds" in dest.read_text()
