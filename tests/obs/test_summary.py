"""Summary tests: digest, span tree rendering, critical path."""

from repro.obs import Trace, critical_path, digest, render_tree, summarize_trace


def _span(name, span_id, parent_id, wall_s, ts, **attrs):
    return {
        "type": "span",
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "trace_id": "t",
        "wall_s": wall_s,
        "ts": ts,
        "status": attrs.pop("status", "ok"),
        **attrs,
    }


def _tree_trace():
    # run(3.0) -> task:a(2.0) -> compute(1.9); task:b(0.5) sibling.
    return Trace(
        schema=2,
        trace_id="t",
        records=[
            _span("compute", "c1", "a1", 1.9, 3.0),
            _span("task:a", "a1", "r1", 2.0, 2.0, task="a"),
            _span("task:b", "b1", "r1", 0.5, 2.5, task="b"),
            _span("run", "r1", None, 3.0, 1.0),
        ],
    )


class TestDigest:
    def test_empty(self):
        assert digest({}) == "trace: no tasks recorded"

    def test_counts_statuses_cache_and_wall(self):
        spans = {
            "a": {"status": "ok", "cache_hit": True, "retries": 1, "wall_s": 1.0},
            "b": {"status": "failed", "cache_hit": False, "retries": 0, "wall_s": 2.0},
        }
        line = digest(spans)
        assert "2 task(s)" in line
        assert "1 failed" in line and "1 ok" in line
        assert "cache 1 hit / 1 miss" in line
        assert "1 retrie(s)" in line
        assert "3.0s total" in line


class TestCriticalPath:
    def test_follows_heaviest_chain(self):
        path = [s["name"] for s in critical_path(_tree_trace())]
        assert path == ["run", "task:a", "compute"]

    def test_flat_v1_spans_terminate(self):
        # v1 spans have span_id=None; the walk must not loop on the
        # None key (regression test for the infinite-recursion bug).
        trace = Trace(
            schema=1,
            records=[
                _span("task:a", None, None, 2.0, 1.0, task="a"),
                _span("task:b", None, None, 1.0, 2.0, task="b"),
            ],
        )
        path = [s["name"] for s in critical_path(trace)]
        assert path == ["task:a"]


class TestRenderTree:
    def test_tree_shape_and_critical_marks(self):
        text = render_tree(_tree_trace())
        lines = text.splitlines()
        assert lines[0].startswith("run 3.000s")
        assert lines[0].endswith("*")
        assert any("├─ task:a" in l for l in lines)
        assert any("└─ task:b" in l for l in lines)
        assert any("compute" in l and "*" in l for l in lines)

    def test_orphan_spans_render_at_root(self):
        # Parent lost to a crash: the child still renders.
        trace = Trace(
            schema=2,
            records=[_span("orphan", "o1", "vanished", 1.0, 1.0)],
        )
        assert "orphan" in render_tree(trace)

    def test_flat_v1_trace_renders_without_recursion(self):
        trace = Trace(
            schema=1,
            records=[
                _span("task:a", None, None, 1.0, 1.0, task="a"),
                _span("task:b", None, None, 1.0, 2.0, task="b"),
            ],
        )
        lines = render_tree(trace).splitlines()
        assert len(lines) == 2

    def test_empty_trace(self):
        assert render_tree(Trace()) == "(no spans)"

    def test_non_ok_status_is_flagged(self):
        trace = Trace(schema=2, records=[_span("task:x", "x1", None, 1.0, 1.0, status="failed")])
        assert "[failed]" in render_tree(trace)


class TestSummarizeTrace:
    def test_header_and_truncation_note(self):
        trace = _tree_trace()
        trace.truncated = True
        text = summarize_trace(trace)
        assert "trace t (schema v2)" in text
        assert "[torn tail tolerated]" in text
        assert "task:a" in text
