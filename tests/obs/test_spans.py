"""Span tests: nesting, parent linkage, error capture, ambient no-op."""

import pytest

from repro.obs import (
    ListSink,
    Tracer,
    current_tracer,
    event,
    reset_tracer,
    set_tracer,
    span,
)


def _spans(sink):
    return [r for r in sink.records if r["type"] == "span"]


class TestTracer:
    def test_span_record_shape(self):
        sink = ListSink()
        tracer = Tracer(sink, trace_id="t1")
        with tracer.span("mds.solve", n=10):
            pass
        (rec,) = _spans(sink)
        assert rec["type"] == "span"
        assert rec["name"] == "mds.solve"
        assert rec["trace_id"] == "t1"
        assert rec["n"] == 10
        assert rec["status"] == "ok"
        assert rec["parent_id"] is None
        assert len(rec["span_id"]) == 16
        assert rec["wall_s"] >= 0

    def test_nesting_links_parent_ids(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = _spans(sink)  # inner closes (and emits) first
        assert inner["name"] == "inner"
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None
        assert inner["trace_id"] == outer["trace_id"]

    def test_siblings_share_parent(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("parent"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, parent = _spans(sink)
        assert a["parent_id"] == parent["span_id"]
        assert b["parent_id"] == parent["span_id"]

    def test_remote_parent_id_roots_top_level_spans(self):
        # A worker's tracer is built with the parent process' span id.
        sink = ListSink()
        tracer = Tracer(sink, trace_id="t", parent_id="remote123")
        with tracer.span("task:figure2"):
            pass
        (rec,) = _spans(sink)
        assert rec["parent_id"] == "remote123"
        assert rec["trace_id"] == "t"

    def test_error_emits_span_with_error_status(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("nope")
        (rec,) = _spans(sink)
        assert rec["status"] == "error"
        assert "ValueError" in rec["error"]

    def test_handle_set_attaches_attributes(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("mds.solve") as handle:
            handle.set(n_iter=42, converged=True)
        (rec,) = _spans(sink)
        assert rec["n_iter"] == 42
        assert rec["converged"] is True

    def test_handle_can_override_status(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("task:x") as handle:
            handle.set(status="failed")
        (rec,) = _spans(sink)
        assert rec["status"] == "failed"

    def test_event_records_current_span(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("outer"):
            tracer.event("fault_fired", fault="raise")
        evt = [r for r in sink.records if r["type"] == "event"][0]
        (outer,) = _spans(sink)
        assert evt["kind"] == "fault_fired"
        assert evt["fault"] == "raise"
        assert evt["span_id"] == outer["span_id"]


class TestAmbientApi:
    def test_span_is_noop_without_tracer(self):
        assert current_tracer() is None
        with span("anything", n=1) as handle:
            handle.set(extra=2)  # must not raise
        event("nothing")  # must not raise

    def test_ambient_span_delegates_to_installed_tracer(self):
        sink = ListSink()
        token = set_tracer(Tracer(sink, trace_id="amb"))
        try:
            with span("phase", k=1):
                event("tick")
        finally:
            reset_tracer(token)
        assert current_tracer() is None
        kinds = [r["type"] for r in sink.records]
        assert kinds == ["event", "span"]
        assert sink.records[1]["trace_id"] == "amb"

    def test_reset_restores_previous_tracer(self):
        sink_a, sink_b = ListSink(), ListSink()
        token_a = set_tracer(Tracer(sink_a))
        token_b = set_tracer(Tracer(sink_b))
        reset_tracer(token_b)
        with span("back-on-a"):
            pass
        reset_tracer(token_a)
        assert [r["name"] for r in _spans(sink_a)] == ["back-on-a"]
        assert _spans(sink_b) == []
