"""Profiling hook and clock tests."""

import pstats
import re

import pytest

from repro.obs import maybe_profile, clock


class TestMaybeProfile:
    def test_disabled_is_a_noop(self, tmp_path):
        with maybe_profile(None, "task"):
            pass
        assert list(tmp_path.iterdir()) == []

    def test_writes_loadable_pstats(self, tmp_path):
        profile_dir = tmp_path / "profiles"
        with maybe_profile(str(profile_dir), "table1"):
            sum(range(1000))
        stats = pstats.Stats(str(profile_dir / "table1.pstats"))
        assert stats.total_calls > 0

    def test_stats_flushed_even_on_raise(self, tmp_path):
        profile_dir = tmp_path / "profiles"
        with pytest.raises(RuntimeError):
            with maybe_profile(str(profile_dir), "doomed"):
                raise RuntimeError("boom")
        assert (profile_dir / "doomed.pstats").exists()

    def test_task_id_cannot_escape_profile_dir(self, tmp_path):
        profile_dir = tmp_path / "profiles"
        with maybe_profile(str(profile_dir), "../evil/task"):
            pass
        (artifact,) = list(profile_dir.iterdir())
        assert artifact.parent == profile_dir


class TestClock:
    def test_new_id_is_16_hex_and_unique(self):
        ids = {clock.new_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(re.fullmatch(r"[0-9a-f]{16}", i) for i in ids)

    def test_utc_stamp_format(self):
        assert re.fullmatch(r"\d{8}-\d{6}", clock.utc_stamp())

    def test_monotonic_sources_advance(self):
        assert clock.perf() <= clock.perf()
        assert clock.monotonic() <= clock.monotonic()
        assert clock.now() > 0
