"""Metrics registry tests: counters, gauges, histograms, exports."""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.metrics import WALL_BUCKETS


class TestCounters:
    def test_inc_creates_and_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("cache_hits_total")
        reg.inc("cache_hits_total", 2)
        assert reg.counter("cache_hits_total") == 3
        assert reg.counter("absent", default=7) == 7

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.inc("x", -1)


class TestGauges:
    def test_set_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("run_wall_seconds", 1.0)
        reg.set_gauge("run_wall_seconds", 2.0)
        assert reg.gauges["run_wall_seconds"] == 2.0

    def test_max_gauge_tracks_peak(self):
        reg = MetricsRegistry()
        reg.max_gauge("peak_rss_kb", 100)
        reg.max_gauge("peak_rss_kb", 50)
        reg.max_gauge("peak_rss_kb", 200)
        assert reg.gauges["peak_rss_kb"] == 200


class TestHistograms:
    def test_observations_land_in_buckets(self):
        reg = MetricsRegistry()
        reg.observe("task_wall_seconds", 0.02, buckets=(0.01, 0.1, 1.0))
        reg.observe("task_wall_seconds", 0.02, buckets=(0.01, 0.1, 1.0))
        reg.observe("task_wall_seconds", 99.0, buckets=(0.01, 0.1, 1.0))
        prom = reg.to_prometheus()
        assert 'task_wall_seconds_bucket{le="0.1"} 2' in prom
        assert 'task_wall_seconds_bucket{le="+Inf"} 3' in prom
        assert "task_wall_seconds_count 3" in prom

    def test_default_buckets_are_ascending(self):
        assert list(WALL_BUCKETS) == sorted(WALL_BUCKETS)


class TestSerialization:
    def _populated(self):
        reg = MetricsRegistry()
        reg.inc("tasks_ok_total", 5)
        reg.set_gauge("run_wall_seconds", 12.5)
        reg.observe("task_wall_seconds", 0.3)
        return reg

    def test_json_round_trip(self):
        reg = self._populated()
        clone = MetricsRegistry.from_json(reg.to_json())
        assert clone.counters == reg.counters
        assert clone.gauges == reg.gauges
        assert clone.to_prometheus() == reg.to_prometheus()

    @pytest.mark.parametrize(
        "text",
        [
            "not json",
            "[1, 2]",
            '{"histograms": {"h": {"buckets": [1], "counts": []}}}',
            '{"counters": []}',
        ],
        ids=["undecodable", "non-object", "ragged-histogram", "wrong-type"],
    )
    def test_malformed_json_is_loud(self, text):
        with pytest.raises(ValueError):
            MetricsRegistry.from_json(text)

    def test_prometheus_format_conventions(self):
        reg = self._populated()
        prom = reg.to_prometheus()
        assert "# TYPE repro_tasks_ok_total counter" in prom
        assert "repro_tasks_ok_total 5" in prom  # int renders without .0
        assert "# TYPE repro_run_wall_seconds gauge" in prom
        assert "repro_run_wall_seconds 12.5" in prom
        assert "# TYPE repro_task_wall_seconds histogram" in prom
        assert prom.endswith("\n")

    def test_prometheus_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        for v in (0.005, 0.03, 0.03, 0.2):
            reg.observe("h", v, buckets=(0.01, 0.05, 0.1))
        prom = reg.to_prometheus(prefix="")
        assert 'h_bucket{le="0.01"} 1' in prom
        assert 'h_bucket{le="0.05"} 3' in prom
        assert 'h_bucket{le="0.1"} 3' in prom
        assert 'h_bucket{le="+Inf"} 4' in prom

    def test_csv_export(self):
        reg = self._populated()
        csv_text = reg.to_csv()
        assert csv_text.splitlines()[0] == "kind,name,value"
        assert "counter,tasks_ok_total,5" in csv_text
        assert "gauge,run_wall_seconds,12.5" in csv_text
        assert "histogram_count,task_wall_seconds,1" in csv_text


class TestThreadSafety:
    def test_concurrent_increments_do_not_lose_updates(self):
        import threading

        reg = MetricsRegistry()

        def bump():
            for _ in range(1000):
                reg.inc("n")
                reg.observe("h", 0.5)

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("n") == 4000
