"""Tests for ``repro.obs.prune`` and the ``prune`` CLI subcommand."""

import os

import pytest

from repro.obs.cli import EXIT_OK, main
from repro.obs.prune import discover_runs, execute_prune, plan_prune

# Epoch of 2026-01-10 00:00:00 UTC, the "now" all planning tests use.
NOW = 1767996000.0


def _mk_run(out_dir, name, *, payload_bytes=16):
    run = out_dir / name
    run.mkdir()
    (run / "trace.jsonl").write_bytes(b"x" * payload_bytes)
    return run


def _stamped(day, *, seed=0, suffix=""):
    return f"run-202601{day:02d}-120000-seed{seed}{suffix}"


class TestDiscover:
    def test_finds_only_stamped_run_dirs(self, tmp_path):
        _mk_run(tmp_path, _stamped(1))
        _mk_run(tmp_path, _stamped(3, suffix="-quick"))
        _mk_run(tmp_path, _stamped(2, suffix=".2"))
        (tmp_path / "not-a-run").mkdir()
        (tmp_path / "run-garbage").mkdir()
        (tmp_path / "results.txt").write_text("x")
        runs = discover_runs(str(tmp_path))
        assert [r.name for r in runs] == [_stamped(1), _stamped(2, suffix=".2"), _stamped(3, suffix="-quick")]

    def test_latest_symlink_is_not_a_candidate(self, tmp_path):
        target = _mk_run(tmp_path, _stamped(1))
        os.symlink(target.name, tmp_path / "latest", target_is_directory=True)
        assert [r.name for r in discover_runs(str(tmp_path))] == [_stamped(1)]

    def test_sizes_are_recursive(self, tmp_path):
        run = _mk_run(tmp_path, _stamped(1), payload_bytes=10)
        (run / "sub").mkdir()
        (run / "sub" / "blob").write_bytes(b"y" * 30)
        (runs,) = discover_runs(str(tmp_path))
        assert runs.size_bytes == 40


class TestPlan:
    def test_keep_last_keeps_newest(self, tmp_path):
        for day in (1, 2, 3, 4):
            _mk_run(tmp_path, _stamped(day))
        plan = plan_prune(str(tmp_path), keep_last=2, now=NOW)
        assert [r.name for r in plan.delete] == [_stamped(1), _stamped(2)]
        assert [r.name for r in plan.keep] == [_stamped(3), _stamped(4)]

    def test_max_age_uses_name_stamp(self, tmp_path):
        _mk_run(tmp_path, _stamped(1))  # 9 days before NOW
        _mk_run(tmp_path, _stamped(8))  # 2 days before NOW
        plan = plan_prune(str(tmp_path), max_age_days=5, now=NOW)
        assert [r.name for r in plan.delete] == [_stamped(1)]
        assert [r.name for r in plan.keep] == [_stamped(8)]

    def test_either_criterion_deletes(self, tmp_path):
        for day in (1, 7, 8, 9):
            _mk_run(tmp_path, _stamped(day))
        # day 1 is too old; day 7 is within age but beyond keep_last=2.
        plan = plan_prune(str(tmp_path), keep_last=2, max_age_days=5, now=NOW)
        assert [r.name for r in plan.delete] == [_stamped(1), _stamped(7)]

    def test_latest_target_is_protected(self, tmp_path):
        for day in (1, 2, 3):
            _mk_run(tmp_path, _stamped(day))
        os.symlink(_stamped(1), tmp_path / "latest", target_is_directory=True)
        plan = plan_prune(str(tmp_path), keep_last=1, now=NOW)
        assert [r.name for r in plan.delete] == [_stamped(2)]
        assert {r.name for r in plan.keep} == {_stamped(1), _stamped(3)}

    def test_latest_marker_file_is_protected(self, tmp_path):
        for day in (1, 2):
            _mk_run(tmp_path, _stamped(day))
        (tmp_path / "LATEST").write_text(_stamped(1) + "\n")
        plan = plan_prune(str(tmp_path), keep_last=1, now=NOW)
        assert plan.delete == ()

    def test_requires_a_criterion(self, tmp_path):
        with pytest.raises(ValueError):
            plan_prune(str(tmp_path), now=NOW)

    def test_rejects_negative_criteria(self, tmp_path):
        with pytest.raises(ValueError):
            plan_prune(str(tmp_path), keep_last=-1, now=NOW)
        with pytest.raises(ValueError):
            plan_prune(str(tmp_path), max_age_days=-0.5, now=NOW)

    def test_freed_bytes_sums_deletions(self, tmp_path):
        _mk_run(tmp_path, _stamped(1), payload_bytes=100)
        _mk_run(tmp_path, _stamped(2), payload_bytes=7)
        plan = plan_prune(str(tmp_path), keep_last=1, now=NOW)
        assert plan.freed_bytes == 100


class TestExecute:
    def test_deletes_planned_dirs_only(self, tmp_path):
        for day in (1, 2, 3):
            _mk_run(tmp_path, _stamped(day))
        plan = plan_prune(str(tmp_path), keep_last=1, now=NOW)
        deleted = execute_prune(plan)
        assert deleted == [_stamped(1), _stamped(2)]
        assert sorted(os.listdir(tmp_path)) == [_stamped(3)]


class TestCli:
    def test_prune_deletes_and_reports(self, tmp_path, capsys):
        for day in (1, 2, 3):
            _mk_run(tmp_path, _stamped(day))
        assert main(["prune", str(tmp_path), "--keep-last", "1"]) == EXIT_OK
        out = capsys.readouterr().out
        assert f"deleted {_stamped(1)}" in out
        assert "deleted 2 of 3 runs" in out
        assert sorted(os.listdir(tmp_path)) == [_stamped(3)]

    def test_dry_run_touches_nothing(self, tmp_path, capsys):
        for day in (1, 2):
            _mk_run(tmp_path, _stamped(day))
        assert main(["prune", str(tmp_path), "--keep-last", "1", "--dry-run"]) == EXIT_OK
        out = capsys.readouterr().out
        assert f"would delete {_stamped(1)}" in out
        assert sorted(os.listdir(tmp_path)) == [_stamped(1), _stamped(2)]

    def test_missing_criteria_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["prune", str(tmp_path)])
        assert exc.value.code == 2

    def test_missing_dir_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["prune", str(tmp_path / "nope"), "--keep-last", "1"])
        assert exc.value.code == 2
