"""Trace file tests: v2 round-trip, v1 back-compat, torn-tail tolerance."""

import json

import pytest

from repro.obs import TRACE_SCHEMA_VERSION, Tracer, TraceWriter, read_trace, write_trace
from repro.runtime.telemetry import Telemetry


class TestStreamingRoundTrip:
    def test_writer_streams_header_then_records(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = TraceWriter(path, trace_id="t0")
        tracer = Tracer(writer, trace_id=writer.trace_id)
        with tracer.span("task:figure2", task="figure2"):
            with tracer.span("mds.solve"):
                pass
        trace = read_trace(path)
        assert trace.schema == TRACE_SCHEMA_VERSION
        assert trace.trace_id == "t0"
        assert not trace.truncated
        assert [s["name"] for s in trace.spans] == ["mds.solve", "task:figure2"]
        assert trace.task_spans["figure2"]["name"] == "task:figure2"

    def test_each_record_is_durable_immediately(self, tmp_path):
        # Records land on disk as they are emitted, not at close (there
        # is no close): a kill -9 after any emit loses nothing prior.
        path = tmp_path / "trace.jsonl"
        writer = TraceWriter(path, trace_id="t0")
        writer.emit({"type": "event", "kind": "probe"})
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["kind"] == "probe"

    def test_two_writers_append_to_one_file(self, tmp_path):
        # Parent writes the header; workers reopen with write_header=False.
        path = tmp_path / "trace.jsonl"
        parent = TraceWriter(path, trace_id="shared")
        worker = TraceWriter(path, trace_id="shared", write_header=False)
        parent.emit({"type": "event", "kind": "parent"})
        worker.emit({"type": "event", "kind": "worker"})
        trace = read_trace(path)
        assert trace.trace_id == "shared"
        assert [e["kind"] for e in trace.events] == ["parent", "worker"]

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_trace(tmp_path / "absent.jsonl")


class TestSchemaV1Compat:
    def test_reads_buffered_telemetry_output(self, tmp_path):
        # The deprecated shim writes the full trace at run end; its task
        # spans must keep working through the v2 reader.
        path = tmp_path / "trace.jsonl"
        t = Telemetry(clock=lambda: 1000.0)
        t.span("figure1", status="ok", wall_s=1.25, cache_hit=True, retries=0, peak_rss_kb=1)
        t.metric("cache_hits", 1)
        t.write(path)
        trace = read_trace(path)
        assert trace.schema == TRACE_SCHEMA_VERSION  # shim writes a v2 header
        assert trace.task_spans["figure1"]["cache_hit"] is True
        # v1-style records are normalized: ids None, name synthesized.
        rec = trace.task_spans["figure1"]
        assert rec["name"] == "task:figure1"
        assert rec["span_id"] is None and rec["parent_id"] is None

    def test_headerless_v1_fragment_reports_schema_1(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        records = [
            {"type": "span", "task": "table1", "status": "ok", "wall_s": 2.0, "ts": 1.0},
            {"type": "metric", "name": "cache_hits", "value": 0, "ts": 1.0},
        ]
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        trace = read_trace(path)
        assert trace.schema == 1
        assert trace.trace_id is None
        assert trace.task_spans["table1"]["wall_s"] == 2.0

    def test_write_trace_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(path, [{"type": "span", "task": "x", "status": "ok"}], trace_id="tid")
        trace = read_trace(path)
        assert trace.trace_id == "tid"
        assert trace.schema == TRACE_SCHEMA_VERSION
        assert "x" in trace.task_spans


class TestTornTail:
    def test_torn_final_line_is_tolerated_and_flagged(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = TraceWriter(path, trace_id="t0")
        tracer = Tracer(writer, trace_id="t0")
        with tracer.span("task:done", task="done"):
            pass
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "span", "name": "torn')  # crash mid-append
        trace = read_trace(path)
        assert trace.truncated
        assert "done" in trace.task_spans  # everything before the tear survives

    def test_mid_file_garbage_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = TraceWriter(path, trace_id="t0")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("not json at all\n")
        writer.emit({"type": "event", "kind": "after"})
        trace = read_trace(path)
        assert trace.truncated
        assert [e["kind"] for e in trace.events] == ["after"]

    def test_non_dict_line_is_flagged(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('["a", "list"]\n')
        trace = read_trace(path)
        assert trace.truncated
        assert trace.records == []
