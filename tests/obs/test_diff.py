"""Run-diff tests: regression classification, thresholds, cache deltas."""

import pytest

from repro.obs import Trace, diff_runs


def _trace(tasks):
    """A minimal parsed trace from {task: attrs} summaries."""
    records = [
        {"type": "span", "name": f"task:{task}", "task": task, "status": "ok", **attrs}
        for task, attrs in tasks.items()
    ]
    return Trace(schema=2, trace_id="t", records=records)


class TestClassification:
    def test_regression_needs_relative_and_absolute_trip(self):
        a = _trace({"x": {"wall_s": 1.0}})
        # +30% and +0.3s: both gates trip -> regression.
        b = _trace({"x": {"wall_s": 1.3}})
        diff = diff_runs(a, b, threshold=0.25, min_wall_s=0.05)
        assert [d.task for d in diff.regressions] == ["x"]
        assert diff.has_regressions

    def test_small_absolute_delta_never_regresses(self):
        # 3x slower but only 20ms: jitter, not a regression.
        a = _trace({"x": {"wall_s": 0.01}})
        b = _trace({"x": {"wall_s": 0.03}})
        diff = diff_runs(a, b, threshold=0.25, min_wall_s=0.05)
        assert not diff.has_regressions
        assert [d.task for d in diff.unchanged] == ["x"]

    def test_large_absolute_small_relative_delta_never_regresses(self):
        # +10s on a 100s task is only +10%: under the relative gate.
        a = _trace({"x": {"wall_s": 100.0}})
        b = _trace({"x": {"wall_s": 110.0}})
        diff = diff_runs(a, b, threshold=0.25, min_wall_s=0.05)
        assert not diff.has_regressions

    def test_improvement_is_the_mirror_image(self):
        a = _trace({"x": {"wall_s": 2.0}})
        b = _trace({"x": {"wall_s": 1.0}})
        diff = diff_runs(a, b)
        assert [d.task for d in diff.improvements] == ["x"]
        assert not diff.has_regressions

    def test_new_and_missing_tasks(self):
        a = _trace({"x": {"wall_s": 1.0}, "gone": {"wall_s": 1.0}})
        b = _trace({"x": {"wall_s": 1.0}, "fresh": {"wall_s": 1.0}})
        diff = diff_runs(a, b)
        assert diff.new_tasks == ["fresh"]
        assert diff.missing_tasks == ["gone"]

    def test_status_change_is_reported(self):
        a = _trace({"x": {"wall_s": 1.0, "status": "ok"}})
        b = _trace({"x": {"wall_s": 1.0, "status": "failed"}})
        diff = diff_runs(a, b)
        assert diff.status_changes == ["x: ok -> failed"]

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            diff_runs(_trace({}), _trace({}), threshold=-0.1)


class TestEffectiveWall:
    def test_compute_s_preferred_over_wall_s(self):
        # Warm run: wall_s ~0 (cache hit) but compute_s persisted in the
        # payload.  Comparing against a cold run must compare the work.
        cold = _trace({"x": {"wall_s": 2.0, "compute_s": 2.0, "cache_hit": False}})
        warm = _trace({"x": {"wall_s": 0.001, "compute_s": 2.0, "cache_hit": True}})
        diff = diff_runs(cold, warm)
        assert not diff.has_regressions
        assert not diff.improvements  # same compute -> unchanged

    def test_cache_hit_rates(self):
        a = _trace({"x": {"cache_hit": False}, "y": {"cache_hit": False}})
        b = _trace({"x": {"cache_hit": True}, "y": {"cache_hit": True}})
        diff = diff_runs(a, b)
        assert diff.cache_rate_a == 0.0
        assert diff.cache_rate_b == 1.0

    def test_ratio_handles_zero_baseline(self):
        a = _trace({"x": {"wall_s": 0.0}})
        b = _trace({"x": {"wall_s": 1.0}})
        diff = diff_runs(a, b)
        (delta,) = diff.regressions
        assert delta.ratio == float("inf")


class TestRender:
    def test_render_mentions_regressions_and_rates(self):
        a = _trace({"x": {"wall_s": 1.0}})
        b = _trace({"x": {"wall_s": 2.0}})
        text = diff_runs(a, b).render()
        assert "REGRESSION: x" in text
        assert "1 regression(s)" in text
        assert "cache hit rate" in text

    def test_render_clean_diff(self):
        a = _trace({"x": {"wall_s": 1.0}})
        text = diff_runs(a, a).render()
        assert "no regressions" in text
