"""PR 8 resilience layer: hard timeouts, cancel, backpressure, poison.

Chaos specs here key on the analysis kind (``hurst*``/``coplot*``)
because the service hashes ``<kind>:<cache-key-prefix>`` as the fault
identity — deterministic per spec, stable across restarts.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service.app import ServiceApp
from repro.service.store import JobStore

CHEAP_HURST = {
    "kind": "hurst",
    "input": {"workload": "CTC", "n_jobs": 300, "seed": 1},
    "params": {"attributes": ["run_time"], "methods": ["rs"]},
}

CHEAP_COPLOT = {
    "kind": "coplot",
    "input": {"workload": "CTC", "n_jobs": 300, "seed": 1},
    "params": {"label": "RES", "seed": 0, "n_init": 2},
}


def _doc(base, **input_overrides):
    doc = json.loads(json.dumps(base))
    doc["input"].update(input_overrides)
    return doc


def _submit(http, svc, doc):
    status, body, _ = http(f"{svc['base']}/v1/analyses", json.dumps(doc).encode())
    assert status == 202, body
    return body["job_id"]


def _wait_status(http, svc, job_id, wanted, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while True:
        _, body, _ = http(f"{svc['base']}/v1/analyses/{job_id}")
        job = body["job"]
        if job["status"] in wanted:
            return job
        assert time.monotonic() < deadline, f"job stuck {job['status']}, wanted {wanted}"
        time.sleep(0.02)


def _delete(url):
    req = urllib.request.Request(url, method="DELETE")
    try:
        with urllib.request.urlopen(req, timeout=30.0) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


class TestHardTimeout:
    def test_hung_worker_is_killed_at_deadline_and_slot_reused(
        self, service_factory, http, poll_done, read_metric
    ):
        """A chaos-hung job dies at ``job_timeout_s``; the single worker
        slot immediately serves the next (normal) job — the acceptance
        probe for hard cancellation."""
        svc = service_factory(
            workers=1,
            job_timeout_s=5.0,
            chaos="5:hurst*=hang,hang_s=60,max_hits=1",
        )
        t0 = time.monotonic()
        hung = _submit(http, svc, _doc(CHEAP_HURST))
        normal = _submit(http, svc, _doc(CHEAP_COPLOT))
        job = poll_done(svc["base"], hung)
        assert job["status"] == "error"
        error = job["error"]
        assert error["code"] == "timeout"
        assert error["limit_s"] == 5.0
        assert error["elapsed_s"] >= 5.0
        # The worker was SIGKILLed, not waited out: the 60s hang never ran.
        assert time.monotonic() - t0 < 30.0
        job = poll_done(svc["base"], normal)
        assert job["status"] == "done", job.get("error")
        # Satellite: the result endpoint maps the timeout to a 504 with
        # the elapsed/limit seconds in the body.
        status, body, _ = http(f"{svc['base']}/v1/analyses/{hung}/result")
        assert status == 504
        assert body["error"]["code"] == "timeout"
        assert body["error"]["limit_s"] == 5.0
        assert body["error"]["elapsed_s"] >= 5.0
        _, metrics, _ = http(f"{svc['base']}/metrics")
        assert read_metric(metrics.decode(), "job_timeouts_total") == 1


class TestCancellation:
    def test_cancel_queued_job(self, service_factory, http, poll_done):
        gate = threading.Event()
        svc = service_factory(workers=1, before_execute=lambda job_id: gate.wait(30))
        try:
            held = _submit(http, svc, _doc(CHEAP_HURST))
            queued = _submit(http, svc, _doc(CHEAP_HURST, seed=2))
            status, body = _delete(f"{svc['base']}/v1/analyses/{queued}")
            assert status == 200
            assert body["job"]["status"] == "cancelled"
            # Terminal: result is 410, a second cancel is 409.
            status, body, _ = http(f"{svc['base']}/v1/analyses/{queued}/result")
            assert status == 410
            assert body["error"]["code"] == "job_cancelled"
            status, body = _delete(f"{svc['base']}/v1/analyses/{queued}")
            assert status == 409
            assert body["error"]["code"] == "not_cancellable"
        finally:
            gate.set()
        assert poll_done(svc["base"], held)["status"] == "done"

    def test_cancel_running_job_kills_the_worker(
        self, service_factory, http, poll_done, read_metric
    ):
        """DELETE on a running job SIGKILLs its (chaos-hung) worker and
        reaches ``cancelled`` in watchdog time, not hang time."""
        svc = service_factory(workers=1, chaos="3:hurst*=hang,hang_s=60,max_hits=1")
        job_id = _submit(http, svc, _doc(CHEAP_HURST))
        _wait_status(http, svc, job_id, ("running",))
        t0 = time.monotonic()
        status, body = _delete(f"{svc['base']}/v1/analyses/{job_id}")
        assert status == 200
        job = poll_done(svc["base"], job_id)
        assert job["status"] == "cancelled"
        assert time.monotonic() - t0 < 30.0  # not the 60s hang
        _, metrics, _ = http(f"{svc['base']}/metrics")
        assert read_metric(metrics.decode(), "analyses_cancelled_total") == 1

    def test_cancel_unknown_job_is_404(self, service_factory):
        svc = service_factory()
        status, body = _delete(f"{svc['base']}/v1/analyses/nope")
        assert status == 404
        assert body["error"]["code"] == "not_found"


class TestBackpressure:
    def test_overload_sheds_with_429_and_readyz_flips(
        self, service_factory, http, poll_done, read_metric
    ):
        """Saturate a workers=1, queue_depth=1 service: the third POST is
        shed with 429 + Retry-After, /readyz goes 503, and both recover
        once the queue drains — the overload satellite."""
        gate = threading.Event()
        svc = service_factory(
            workers=1, queue_depth=1, before_execute=lambda job_id: gate.wait(30)
        )
        try:
            first = _submit(http, svc, _doc(CHEAP_HURST))
            second = _submit(http, svc, _doc(CHEAP_HURST, seed=2))
            # Capacity (1+1) is taken: shed, with a Retry-After header.
            req = urllib.request.Request(
                f"{svc['base']}/v1/analyses",
                data=json.dumps(_doc(CHEAP_HURST, seed=3)).encode(),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(req, timeout=30.0)
            assert excinfo.value.code == 429
            shed = json.loads(excinfo.value.read())
            assert shed["error"]["code"] == "over_capacity"
            assert shed["error"]["retry_after"] > 0
            assert int(excinfo.value.headers["Retry-After"]) >= 1
            # Not ready while saturated; still alive.
            status, body, _ = http(f"{svc['base']}/readyz")
            assert status == 503
            assert body["error"]["code"] == "not_ready"
            status, body, _ = http(f"{svc['base']}/healthz")
            assert status == 200
        finally:
            gate.set()
        assert poll_done(svc["base"], first)["status"] == "done"
        assert poll_done(svc["base"], second)["status"] == "done"
        # Recovery: headroom is back, readiness with it.
        status, body, _ = http(f"{svc['base']}/readyz")
        assert status == 200
        assert body["status"] == "ready"
        assert body["headroom"] == 2
        _, metrics, _ = http(f"{svc['base']}/metrics")
        text = metrics.decode()
        assert read_metric(text, "analyses_shed_total") == 1
        assert read_metric(text, "queue_headroom") == 2


class TestRetriesAndPoison:
    def test_worker_crash_is_retried_to_done(
        self, service_factory, http, poll_done, read_metric
    ):
        """One injected worker crash (os._exit) is transient: the job
        retries with backoff and completes on attempt 2."""
        svc = service_factory(workers=1, chaos="9:hurst*=exit,p=1,max_hits=1")
        job_id = _submit(http, svc, _doc(CHEAP_HURST))
        job = poll_done(svc["base"], job_id)
        assert job["status"] == "done", job.get("error")
        assert job["attempts"] == 2
        _, metrics, _ = http(f"{svc['base']}/metrics")
        text = metrics.decode()
        assert read_metric(text, "worker_crashes_total") == 1
        assert read_metric(text, "job_retries_total") == 1

    def test_repeat_crasher_is_poisoned_then_pardoned(
        self, service_factory, http, poll_done
    ):
        """A spec that crashes every attempt trips the breaker at the
        threshold, quarantines resubmissions with 410, and a pardon on a
        chaos-free restart runs it to done."""
        svc = service_factory(
            workers=1,
            poison_threshold=2,
            job_retries=5,
            chaos="9:hurst*=exit,p=1",
        )
        job_id = _submit(http, svc, _doc(CHEAP_HURST))
        job = poll_done(svc["base"], job_id)
        assert job["status"] == "poisoned"
        assert job["error"]["code"] == "quarantined"
        assert job["attempts"] == 2  # tripped exactly at the threshold
        status, body, _ = http(f"{svc['base']}/v1/analyses/{job_id}/result")
        assert status == 410
        assert body["error"]["code"] == "quarantined"
        # Resubmitting the same spec is refused outright.
        status, body, _ = http(
            f"{svc['base']}/v1/analyses", json.dumps(_doc(CHEAP_HURST)).encode()
        )
        assert status == 410
        assert body["error"]["code"] == "quarantined"
        # A chaos-free restart on the same journal still refuses it
        # (poison records replay) until POST .../retry pardons it.
        svc2 = service_factory(state_dir=svc["state_dir"], workers=1, poison_threshold=2)
        assert svc2["app"].poisoned_on_boot == 0  # terminal, not re-charged
        status, body, _ = http(
            f"{svc2['base']}/v1/analyses", json.dumps(_doc(CHEAP_HURST)).encode()
        )
        assert status == 410
        status, body, _ = http(
            f"{svc2['base']}/v1/analyses/{job_id}/retry", json.dumps({}).encode()
        )
        assert status == 202, body
        job = poll_done(svc2["base"], job_id)
        assert job["status"] == "done", job.get("error")
        assert job["retried"] is True
        assert "error" not in job  # the stale quarantine error was shed

    def test_running_at_crash_poisons_on_boot_at_threshold(self, tmp_path):
        """A spec already charged once that is again ``running`` when the
        server dies lands ``poisoned`` on recovery, not re-enqueued —
        the crash-loop breaker across restarts."""
        state = str(tmp_path / "state")
        store = JobStore(state)
        from repro.service.analyses import parse_analysis_request

        spec = parse_analysis_request(json.loads(json.dumps(CHEAP_HURST)))
        store.create("job-killer", kind=spec.kind, spec=spec.canonical(), key="k-bad")
        store.update("job-killer", status="running", started_ts=1.0)
        store.record_key_failure("k-bad")  # the previous boot's charge

        app = ServiceApp(state, workers=1, poison_threshold=2)
        try:
            assert app.poisoned_on_boot == 1
            assert app.recovered_jobs == 0
            record = app.store.get("job-killer")
            assert record["status"] == "poisoned"
            assert record["error"]["code"] == "quarantined"
            assert app.store.poison_count("k-bad") == 2
        finally:
            app.close(wait=True)


class TestDrain:
    def test_drain_timeout_kills_and_requeues_without_poison(
        self, service_factory, http
    ):
        """A job still hung when ``--drain-timeout-s`` expires is killed
        and requeued for the next boot, with no poison charge — the
        interruption was ours, not the spec's."""
        svc = service_factory(workers=1, chaos="3:hurst*=hang,hang_s=60")
        job_id = _submit(http, svc, _doc(CHEAP_HURST))
        job = _wait_status(http, svc, job_id, ("running",))
        t0 = time.monotonic()
        pending = svc["app"].close(wait=True, drain_timeout_s=0.5)
        assert pending == [job_id]
        assert time.monotonic() - t0 < 30.0  # bounded, not the 60s hang
        record = svc["app"].store.get(job_id)
        assert record["status"] == "queued"
        assert record["drain_requeued"] is True
        assert svc["app"].store.poison_count(record["key"]) == 0

        # A chaos-free boot on the same journal finishes the job.
        app2 = ServiceApp(svc["state_dir"], workers=1)
        try:
            assert app2.recovered_jobs == 1
            deadline = time.monotonic() + 120.0
            while app2.store.get(job_id)["status"] not in ("done", "error"):
                assert time.monotonic() < deadline
                time.sleep(0.05)
            assert app2.store.get(job_id)["status"] == "done"
        finally:
            app2.close(wait=True)
