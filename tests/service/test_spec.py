"""Spec parsing and canonicalisation — the service's cache identity."""

import pytest

from repro.runtime.cache import ResultCache
from repro.service.analyses import (
    ANALYSIS_KINDS,
    parse_analysis_request,
    spec_cache_key,
)
from repro.service.errors import ServiceError

DIGEST = "ab" * 32


def invalid(doc, **kwargs):
    with pytest.raises(ServiceError) as err:
        parse_analysis_request(doc, **kwargs)
    assert err.value.code == "invalid_spec"
    return err.value


class TestParsing:
    def test_default_kind_is_coplot(self):
        spec = parse_analysis_request({}, upload_digest=DIGEST)
        assert spec.kind == "coplot"
        assert spec.input == {"upload": DIGEST}

    def test_all_kinds_accepted(self):
        for kind in ANALYSIS_KINDS:
            if kind == "experiment":
                doc = {"kind": kind, "input": {"experiment": "figure2"}}
            else:
                doc = {"kind": kind, "input": {"workload": "CTC"}}
            assert parse_analysis_request(doc).kind == kind

    def test_unknown_kind_rejected(self):
        invalid({"kind": "regress", "input": {"workload": "CTC"}})

    def test_unknown_workload_rejected(self):
        invalid({"input": {"workload": "NotALog"}})

    def test_unknown_model_rejected(self):
        invalid({"input": {"model": "NotAModel"}})

    def test_unknown_experiment_rejected(self):
        invalid({"kind": "experiment", "input": {"experiment": "figure99"}})

    def test_input_must_name_exactly_one_source(self):
        invalid({"input": {}})
        invalid({"input": {"workload": "CTC", "model": "Lublin"}})

    def test_upload_body_excludes_named_input(self):
        invalid({"input": {"workload": "CTC"}}, upload_digest=DIGEST)

    def test_experiment_kind_needs_experiment_input(self):
        invalid({"kind": "experiment", "input": {"workload": "CTC"}})
        invalid({"kind": "coplot", "input": {"experiment": "figure2"}})

    def test_bad_digest_rejected(self):
        invalid({"input": {"upload": "short"}})

    def test_unknown_sign_rejected(self):
        invalid(
            {"input": {"workload": "CTC"}, "params": {"signs": ["nonesuch"]}}
        )

    def test_negative_seed_rejected(self):
        invalid({"input": {"workload": "CTC", "seed": -1}})

    def test_bool_is_not_an_int(self):
        invalid({"input": {"workload": "CTC", "n_jobs": True}})

    def test_compare_needs_two_models(self):
        invalid(
            {"kind": "compare", "input": {"workload": "CTC"},
             "params": {"models": ["Lublin"]}}
        )

    def test_hurst_unknown_method_rejected(self):
        invalid(
            {"kind": "hurst", "input": {"workload": "CTC"},
             "params": {"methods": ["tea-leaves"]}}
        )

    def test_non_object_body_rejected(self):
        invalid(["not", "an", "object"])
        invalid(None)


class TestCanonicalisation:
    def test_params_are_total(self):
        """Every default is materialised, so omission == explicit default."""
        bare = parse_analysis_request({"input": {"workload": "CTC"}})
        explicit = parse_analysis_request(
            {
                "kind": "coplot",
                "input": {"workload": "CTC", "n_jobs": 2000, "seed": 0},
                "params": {"seed": 0, "n_init": 8, "label": "upload"},
            }
        )
        assert bare.canonical() == explicit.canonical()

    def test_equivalent_requests_share_a_cache_key(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="f1")
        a = parse_analysis_request({"input": {"workload": "CTC"}})
        b = parse_analysis_request(
            {"kind": "coplot", "input": {"workload": "CTC", "seed": 0}}
        )
        assert spec_cache_key(a, cache) == spec_cache_key(b, cache)

    def test_different_inputs_differ(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="f1")
        a = parse_analysis_request({"input": {"workload": "CTC"}})
        b = parse_analysis_request({"input": {"workload": "KTH"}})
        assert spec_cache_key(a, cache) != spec_cache_key(b, cache)

    def test_experiment_key_matches_cli_runner(self, tmp_path):
        """A service 'experiment' request lands on the CLI's cache entry."""
        from repro.experiments.registry import REGISTRY, build_kwargs

        cache = ResultCache(str(tmp_path), fingerprint="f1")
        spec = parse_analysis_request(
            {"kind": "experiment", "input": {"experiment": "figure2", "quick": True}}
        )
        expected = cache.key(
            "figure2", build_kwargs(REGISTRY["figure2"], seed=0, quick=True)
        )
        assert spec_cache_key(spec, cache) == expected
