"""Restart semantics: the journal brings a killed server's jobs back."""

import json
import time

from repro.service.app import ServiceApp
from repro.service.store import JOBS_JOURNAL_NAME, JobStore

CHEAP_HURST = {
    "kind": "hurst",
    "input": {"workload": "CTC", "n_jobs": 300, "seed": 1},
    "params": {"attributes": ["run_time"], "methods": ["rs"]},
}


def _wait_done(store, job_id, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while True:
        record = store.get(job_id)
        if record["status"] in ("done", "error"):
            return record
        assert time.monotonic() < deadline, f"job stuck {record['status']}"
        time.sleep(0.05)


def test_finished_jobs_survive_a_restart(tmp_path):
    """Status and result of a done job are served by the next process."""
    state = str(tmp_path / "state")
    app1 = ServiceApp(state, workers=1)
    try:
        _, body = app1.submit(json.loads(json.dumps(CHEAP_HURST)))
        job_id = body["job_id"]
        record = _wait_done(app1.store, job_id)
        assert record["status"] == "done"
        payload1 = app1.job_result(job_id)
    finally:
        app1.close(wait=True)

    app2 = ServiceApp(state, workers=1)
    try:
        assert app2.recovered_jobs == 0  # done jobs are not re-run
        record = app2.job_status(job_id)["job"]
        assert record["status"] == "done"
        assert app2.job_result(job_id) == payload1  # straight off the cache
    finally:
        app2.close(wait=True)


def test_unfinished_jobs_are_reenqueued(tmp_path):
    """A job that was queued/running at the kill runs to completion."""
    state = str(tmp_path / "state")
    # Simulate the dead server: a journal holding an accepted job that
    # never reached a terminal state.
    store = JobStore(state)
    from repro.service.analyses import parse_analysis_request

    spec = parse_analysis_request(json.loads(json.dumps(CHEAP_HURST)))
    store.create("job-interrupted", kind=spec.kind, spec=spec.canonical(), key="k-pending")
    store.update("job-interrupted", status="running", started_ts=1.0)

    app = ServiceApp(state, workers=1)
    try:
        assert app.recovered_jobs == 1
        record = _wait_done(app.store, "job-interrupted")
        assert record["status"] == "done", record.get("error")
        assert record["recovered"] is True
        payload = app.job_result("job-interrupted")
        assert payload["kind"] == "hurst"
    finally:
        app.close(wait=True)


def test_restart_tolerates_a_torn_journal_tail(tmp_path):
    state = str(tmp_path / "state")
    app1 = ServiceApp(state, workers=1)
    try:
        _, body = app1.submit(json.loads(json.dumps(CHEAP_HURST)))
        _wait_done(app1.store, body["job_id"])
    finally:
        app1.close(wait=True)
    with open(f"{state}/{JOBS_JOURNAL_NAME}", "a", encoding="utf-8") as fh:
        fh.write('{"type": "job", "id": "torn", "sta')  # SIGKILL mid-append

    app2 = ServiceApp(state, workers=1)
    try:
        assert app2.job_status(body["job_id"])["job"]["status"] == "done"
        assert app2.store.get("torn") is None
    finally:
        app2.close(wait=True)


def test_recovered_counter_is_exported(tmp_path):
    state = str(tmp_path / "state")
    store = JobStore(state)
    from repro.service.analyses import parse_analysis_request

    spec = parse_analysis_request(json.loads(json.dumps(CHEAP_HURST)))
    store.create("job-x", kind=spec.kind, spec=spec.canonical(), key="k")
    app = ServiceApp(state, workers=1)
    try:
        assert "repro_service_analyses_recovered_total 1" in app.prometheus()
        _wait_done(app.store, "job-x")
    finally:
        app.close(wait=True)
