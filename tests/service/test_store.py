"""Journal-backed job store: durability, replay, upload spooling."""

import gzip
import json

import pytest

from repro.service.errors import ServiceError
from repro.service.store import JOBS_JOURNAL_NAME, JobStore


class TestLifecycle:
    def test_create_then_get(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.create("j1", kind="hurst", key="k1")
        record = store.get("j1")
        assert record["status"] == "queued"
        assert record["kind"] == "hurst"
        assert record["created_ts"] > 0

    def test_update_merges(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.create("j1", kind="hurst", key="k1")
        store.update("j1", status="running", started_ts=1.0)
        record = store.get("j1")
        assert record["status"] == "running"
        assert record["kind"] == "hurst"  # untouched fields survive

    def test_duplicate_create_rejected(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.create("j1")
        with pytest.raises(ValueError):
            store.create("j1")

    def test_update_unknown_job_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            JobStore(str(tmp_path)).update("ghost", status="done")

    def test_jobs_in_submission_order(self, tmp_path):
        store = JobStore(str(tmp_path))
        for i in range(5):
            store.create(f"j{i}")
        assert [r["id"] for r in store.jobs()] == [f"j{i}" for i in range(5)]

    def test_counts(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.create("j1")
        store.create("j2")
        store.update("j2", status="done")
        assert store.counts() == {
            "queued": 1,
            "running": 0,
            "done": 1,
            "error": 0,
            "cancelled": 0,
            "poisoned": 0,
        }

    def test_in_flight_for_key(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.create("j1", key="k1")
        store.create("j2", key="k2")
        store.update("j1", status="done")
        assert store.in_flight_for_key("k1") is None  # done is not in flight
        assert store.in_flight_for_key("k2")["id"] == "j2"
        assert store.in_flight_for_key("k3") is None


class TestReplay:
    def test_restart_sees_last_state(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.create("j1", kind="coplot", key="k1")
        store.update("j1", status="running")
        store.update("j1", status="done", wall_s=1.5)
        reborn = JobStore(str(tmp_path))
        record = reborn.get("j1")
        assert record["status"] == "done"
        assert record["wall_s"] == 1.5
        assert [r["id"] for r in reborn.jobs()] == ["j1"]

    def test_torn_tail_is_skipped(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.create("j1", key="k1")
        journal = tmp_path / JOBS_JOURNAL_NAME
        with open(journal, "a", encoding="utf-8") as fh:
            fh.write('{"type": "job", "id": "j2", "status": "que')  # SIGKILL here
        reborn = JobStore(str(tmp_path))
        assert reborn.get("j1") is not None
        assert reborn.get("j2") is None

    def test_foreign_records_ignored(self, tmp_path):
        journal = tmp_path / JOBS_JOURNAL_NAME
        journal.write_text(
            json.dumps({"type": "note", "id": "x"}) + "\n"
            + json.dumps({"type": "job", "id": 7}) + "\n"
            + json.dumps({"type": "job", "id": "ok", "status": "queued"}) + "\n"
        )
        store = JobStore(str(tmp_path))
        assert [r["id"] for r in store.jobs()] == ["ok"]


class TestUploads:
    def test_plain_and_gzip_share_a_digest(self, tmp_path):
        store = JobStore(str(tmp_path))
        body = b"; a log\n1 0 0 10 4 -1 -1 4 10 -1 1 1 1 1 1 -1 -1 -1\n"
        assert store.spool_upload(body) == store.spool_upload(gzip.compress(body))

    def test_spooled_bytes_are_decompressed(self, tmp_path):
        store = JobStore(str(tmp_path))
        body = b"payload bytes\n"
        digest = store.spool_upload(gzip.compress(body))
        with open(store.upload_path(digest), "rb") as fh:
            assert fh.read() == body

    def test_bad_gzip_is_a_service_error(self, tmp_path):
        store = JobStore(str(tmp_path))
        with pytest.raises(ServiceError) as err:
            store.spool_upload(b"\x1f\x8bthis is not a gzip stream")
        assert err.value.code == "bad_swf"
        assert err.value.status == 400
