"""Fixtures for the HTTP service tests: real servers on ephemeral ports."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service.app import ServiceApp, make_server


@pytest.fixture
def service_factory(tmp_path):
    """Boot real services (socket and all); tears every one down after."""
    created = []

    def factory(**kwargs):
        state_dir = kwargs.pop("state_dir", None) or str(tmp_path / f"state{len(created)}")
        app = ServiceApp(state_dir, **kwargs)
        server = make_server(app, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        svc = {
            "app": app,
            "server": server,
            "base": f"http://{host}:{port}",
            "state_dir": state_dir,
        }
        created.append(svc)
        return svc

    yield factory
    for svc in created:
        svc["server"].shutdown()
        svc["server"].server_close()
        svc["app"].close(wait=True)


@pytest.fixture
def http():
    """A tiny urllib client returning ``(status, parsed-or-bytes, ctype)``."""

    def request(url, data=None, *, content_type="application/json", timeout=30.0):
        req = urllib.request.Request(url, data=data)
        if data is not None:
            req.add_header("Content-Type", content_type)
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                status, body = resp.status, resp.read()
                ctype = resp.headers.get("Content-Type", "")
        except urllib.error.HTTPError as err:
            status, body = err.code, err.read()
            ctype = err.headers.get("Content-Type", "")
        if ctype.startswith("application/json"):
            return status, json.loads(body), ctype
        return status, body, ctype

    return request


@pytest.fixture
def poll_done(http):
    """Poll a job id until it leaves queued/running; returns the record."""
    import time

    def poll(base, job_id, *, timeout_s=120.0):
        deadline = time.monotonic() + timeout_s
        while True:
            status, body, _ = http(f"{base}/v1/analyses/{job_id}")
            assert status == 200, body
            job = body["job"]
            if job["status"] in ("done", "error", "cancelled", "poisoned"):
                return job
            assert time.monotonic() < deadline, f"job stuck {job['status']}"
            time.sleep(0.05)

    return poll


@pytest.fixture
def small_swf():
    """A small real SWF log rendered from a synthesized workload."""
    from repro.archive.synthesize import synthesize_workload
    from repro.workload.swf import render_swf_text

    return render_swf_text(synthesize_workload("CTC", n_jobs=150, seed=3)).encode()


def metric(prom_text, name):
    """Read one ``repro_service_`` sample out of Prometheus text."""
    for line in prom_text.splitlines():
        if line.startswith(f"repro_service_{name} "):
            return float(line.split()[-1])
    return 0.0


@pytest.fixture
def read_metric():
    return metric


#: A cheap analysis document: one series, one estimator, small workload.
CHEAP_HURST = {
    "kind": "hurst",
    "input": {"workload": "CTC", "n_jobs": 300, "seed": 1},
    "params": {"attributes": ["run_time"], "methods": ["rs"]},
}


@pytest.fixture
def cheap_doc():
    return json.loads(json.dumps(CHEAP_HURST))
