"""End-to-end HTTP tests against a real server on an ephemeral port."""

import gzip
import http.client
import json
import os
import threading
import urllib.parse


class TestUploadRoundTrip:
    def test_upload_poll_fetch_json_and_svg(self, service_factory, http, poll_done, small_swf):
        svc = service_factory(workers=2)
        spec = {"kind": "coplot", "params": {"seed": 0, "n_init": 2}}
        url = f"{svc['base']}/v1/analyses?spec={urllib.parse.quote(json.dumps(spec))}"

        status, body, _ = http(url, gzip.compress(small_swf),
                               content_type="application/octet-stream")
        assert status == 202, body
        assert body["status"] == "queued"
        job = poll_done(svc["base"], body["job_id"])
        assert job["status"] == "done", job.get("error")
        assert job["cache_hit"] is False

        status, payload, _ = http(f"{svc['base']}{body['links']['result']}")
        assert status == 200
        assert payload["kind"] == "coplot"
        assert "upload" in payload["map"]["labels"]
        assert len(payload["map"]["labels"]) == 11  # 10 production logs + upload
        assert payload["map"]["alienation"] < 0.2
        assert payload["nearest"] is not None

        status, svg, ctype = http(f"{svc['base']}{body['links']['result']}?format=svg")
        assert status == 200
        assert ctype.startswith("image/svg+xml")
        assert svg.lstrip().startswith(b"<svg")

    def test_run_dir_and_latest_link(self, service_factory, http, poll_done, cheap_doc):
        svc = service_factory(workers=1)
        status, body, _ = http(
            f"{svc['base']}/v1/analyses", json.dumps(cheap_doc).encode()
        )
        assert status == 202, body
        job = poll_done(svc["base"], body["job_id"])
        assert os.path.isfile(os.path.join(job["run_dir"], "result.json"))
        latest = os.path.join(svc["state_dir"], "runs", "latest")
        assert os.path.realpath(latest) == os.path.realpath(job["run_dir"])


class TestCaching:
    def test_identical_posts_compute_once(self, service_factory, http, poll_done,
                                          cheap_doc, read_metric):
        """The acceptance criterion: the second POST is a cache hit,
        proven by the service's own /metrics counters."""
        svc = service_factory(workers=2)
        doc = json.dumps(cheap_doc).encode()

        status, first, _ = http(f"{svc['base']}/v1/analyses", doc)
        assert status == 202, first
        job1 = poll_done(svc["base"], first["job_id"])
        assert job1["status"] == "done" and job1["cache_hit"] is False

        _, before, _ = http(f"{svc['base']}/metrics")
        before = before.decode()
        assert read_metric(before, "analysis_compute_total") == 1
        assert read_metric(before, "analysis_cache_hits_total") == 0

        status, second, _ = http(f"{svc['base']}/v1/analyses", doc)
        assert status == 202, second
        assert second["job_id"] != first["job_id"]
        assert second["key"] == first["key"]
        job2 = poll_done(svc["base"], second["job_id"])
        assert job2["status"] == "done" and job2["cache_hit"] is True

        _, after, _ = http(f"{svc['base']}/metrics")
        after = after.decode()
        assert read_metric(after, "analysis_cache_hits_total") == 1
        assert read_metric(after, "analysis_compute_total") == 1  # no recompute

        _, p1, _ = http(f"{svc['base']}/v1/analyses/{first['job_id']}/result")
        _, p2, _ = http(f"{svc['base']}/v1/analyses/{second['job_id']}/result")
        assert p1 == p2

    def test_in_flight_duplicate_is_409(self, service_factory, http, cheap_doc, poll_done):
        release = threading.Event()
        started = threading.Event()

        def hold(job_id):
            started.set()
            release.wait(timeout=60)

        svc = service_factory(workers=1, before_execute=hold)
        doc = json.dumps(cheap_doc).encode()
        try:
            status, first, _ = http(f"{svc['base']}/v1/analyses", doc)
            assert status == 202
            assert started.wait(timeout=30)

            status, dup, _ = http(f"{svc['base']}/v1/analyses", doc)
            assert status == 409
            assert dup["error"]["code"] == "already_in_flight"
            assert dup["error"]["job_id"] == first["job_id"]

            status, not_ready, _ = http(
                f"{svc['base']}/v1/analyses/{first['job_id']}/result"
            )
            assert status == 409
            assert not_ready["error"]["code"] == "result_not_ready"
        finally:
            release.set()
        job = poll_done(svc["base"], first["job_id"])
        assert job["status"] == "done"


class TestErrors:
    def test_malformed_swf_is_structured_400(self, service_factory, http):
        svc = service_factory()
        status, body, _ = http(
            f"{svc['base']}/v1/analyses?kind=coplot",
            b"definitely not\nan SWF log\n",
            content_type="application/octet-stream",
        )
        assert status == 400
        assert body["error"]["code"] == "bad_swf"
        assert body["error"]["message"]

    def test_oversized_body_is_413(self, service_factory, http, small_swf):
        svc = service_factory(max_body_bytes=1024)
        status, body, _ = http(
            f"{svc['base']}/v1/analyses?kind=coplot",
            small_swf,
            content_type="application/octet-stream",
        )
        assert status == 413
        assert body["error"]["code"] == "payload_too_large"
        assert body["error"]["limit"] == 1024

    def test_missing_content_length_is_411(self, service_factory):
        svc = service_factory()
        host, port = svc["server"].server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.putrequest("POST", "/v1/analyses")
            conn.putheader("Content-Type", "application/json")
            conn.endheaders()
            resp = conn.getresponse()
            assert resp.status == 411
            assert json.loads(resp.read())["error"]["code"] == "length_required"
        finally:
            conn.close()

    def test_invalid_json_body(self, service_factory, http):
        svc = service_factory()
        status, body, _ = http(f"{svc['base']}/v1/analyses", b"{nope")
        assert status == 400
        assert body["error"]["code"] == "invalid_json"

    def test_invalid_spec(self, service_factory, http):
        svc = service_factory()
        status, body, _ = http(
            f"{svc['base']}/v1/analyses",
            json.dumps({"input": {"workload": "NotALog"}}).encode(),
        )
        assert status == 400
        assert body["error"]["code"] == "invalid_spec"

    def test_unsupported_media_type(self, service_factory, http):
        svc = service_factory()
        status, body, _ = http(
            f"{svc['base']}/v1/analyses", b"<xml/>", content_type="text/xml"
        )
        assert status == 415
        assert body["error"]["code"] == "unsupported_media_type"

    def test_unknown_job_is_404(self, service_factory, http):
        svc = service_factory()
        status, body, _ = http(f"{svc['base']}/v1/analyses/nope")
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_unknown_route_is_404(self, service_factory, http):
        svc = service_factory()
        status, body, _ = http(f"{svc['base']}/v2/whatever")
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_post_to_get_route_is_405(self, service_factory, http):
        svc = service_factory()
        status, body, _ = http(f"{svc['base']}/metrics", b"{}")
        assert status == 405
        assert body["error"]["code"] == "method_not_allowed"


class TestIntrospection:
    def test_healthz(self, service_factory, http):
        svc = service_factory()
        status, body, _ = http(f"{svc['base']}/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["jobs"] == {
            "queued": 0,
            "running": 0,
            "done": 0,
            "error": 0,
            "cancelled": 0,
            "poisoned": 0,
        }

    def test_list_jobs(self, service_factory, http, poll_done, cheap_doc):
        svc = service_factory(workers=1)
        status, body, _ = http(
            f"{svc['base']}/v1/analyses", json.dumps(cheap_doc).encode()
        )
        poll_done(svc["base"], body["job_id"])
        status, listing, _ = http(f"{svc['base']}/v1/analyses")
        assert status == 200
        assert [j["id"] for j in listing["jobs"]] == [body["job_id"]]
        assert listing["counts"]["done"] == 1
        assert "spec" not in listing["jobs"][0]

    def test_metrics_exposition(self, service_factory, http):
        svc = service_factory()
        http(f"{svc['base']}/healthz")
        status, body, ctype = http(f"{svc['base']}/metrics")
        assert status == 200
        assert ctype.startswith("text/plain")
        text = body.decode()
        assert "repro_service_http_requests_total" in text
        assert "repro_service_http_requests_healthz_total" in text
        assert "repro_service_jobs_queued" in text
        assert "repro_service_http_request_seconds_healthz" in text

    def test_request_spans_reach_the_trace(self, service_factory, http):
        from repro.obs import read_trace

        svc = service_factory()
        http(f"{svc['base']}/healthz")
        trace = read_trace(os.path.join(svc["state_dir"], "trace.jsonl"))
        names = [s.get("name") for s in trace.spans]
        assert "http.request" in names

    def test_draining_returns_503(self, service_factory, http, cheap_doc):
        svc = service_factory()
        svc["app"].close(wait=True)
        status, body, _ = http(
            f"{svc['base']}/v1/analyses", json.dumps(cheap_doc).encode()
        )
        assert status == 503
        assert body["error"]["code"] == "shutting_down"
