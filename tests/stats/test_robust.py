"""Tests for the robust third-moment estimators (Section 10 future work)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats import octile_skewness, quantile_skewness, trimmed_third_moment


class TestQuantileSkewness:
    def test_symmetric_is_zero(self, rng):
        x = rng.normal(size=50000)
        assert quantile_skewness(x) == pytest.approx(0.0, abs=0.02)

    def test_right_skew_positive(self, rng):
        x = rng.lognormal(0.0, 1.0, 50000)
        assert quantile_skewness(x) > 0.1

    def test_left_skew_negative(self, rng):
        x = -rng.lognormal(0.0, 1.0, 50000)
        assert quantile_skewness(x) < -0.1

    @given(st.floats(min_value=0.05, max_value=0.45))
    def test_property_bounded(self, p):
        rng = np.random.default_rng(0)
        x = rng.lognormal(1.0, 2.0, 500)
        assert -1.0 <= quantile_skewness(x, p=p) <= 1.0

    def test_location_scale_invariant(self, rng):
        x = rng.lognormal(0.0, 1.0, 10000)
        a = quantile_skewness(x)
        b = quantile_skewness(5.0 * x + 100.0)
        assert b == pytest.approx(a, abs=1e-9)

    def test_degenerate_sample(self):
        assert quantile_skewness(np.full(10, 3.0)) == 0.0

    def test_p_validation(self):
        with pytest.raises(ValueError):
            quantile_skewness([1.0, 2.0, 3.0], p=0.5)

    def test_octile_more_sensitive_than_quartile(self, rng):
        """The octile variant reaches further into the tail, so it reads
        more skewness on a heavy-tailed sample."""
        x = rng.lognormal(0.0, 1.5, 50000)
        assert octile_skewness(x) > quantile_skewness(x)


class TestTrimmedThirdMoment:
    def test_symmetric_is_zero(self, rng):
        x = rng.normal(size=50000)
        assert trimmed_third_moment(x) == pytest.approx(0.0, abs=0.05)

    def test_right_skew_positive(self, rng):
        x = rng.lognormal(0.0, 1.0, 50000)
        assert trimmed_third_moment(x) > 0.3

    def test_degenerate(self):
        assert trimmed_third_moment(np.full(10, 2.0)) == 0.0

    def test_trim_validation(self):
        with pytest.raises(ValueError):
            trimmed_third_moment([1.0, 2.0, 3.0], trim=0.6)


class TestRobustnessToTail:
    """The Section 3 experiment at the third moment: removing the 0.1%
    'taily' jobs wrecks the classical skewness but not the robust ones."""

    @pytest.fixture(scope="class")
    def runtimes(self):
        from repro.archive.calibrate import solve_lognormal_marginal

        dist = solve_lognormal_marginal(960.0, 57216.0)  # CTC runtimes
        return np.sort(dist.sample(100000, seed=0))

    @staticmethod
    def _classical_skewness(x) -> float:
        c = x - x.mean()
        return float(np.mean(c**3) / x.std() ** 3)

    def test_classical_skewness_fragile(self, runtimes):
        k = int(0.001 * runtimes.size)
        full = self._classical_skewness(runtimes)
        trimmed = self._classical_skewness(runtimes[:-k])
        assert abs(trimmed / full - 1.0) > 0.3  # shifts by tens of percent

    def test_quantile_skewness_stable(self, runtimes):
        k = int(0.001 * runtimes.size)
        full = quantile_skewness(runtimes)
        trimmed = quantile_skewness(runtimes[:-k])
        assert trimmed == pytest.approx(full, abs=0.01)

    def test_trimmed_moment_stable(self, runtimes):
        k = int(0.001 * runtimes.size)
        full = trimmed_third_moment(runtimes, trim=0.01)
        trimmed = trimmed_third_moment(runtimes[:-k], trim=0.01)
        assert trimmed == pytest.approx(full, rel=0.1)
