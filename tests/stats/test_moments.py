"""Tests for repro.stats.moments."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.distributions import HyperExponential
from repro.stats.moments import (
    central_to_raw,
    fit_hyper_erlang,
    fit_two_stage_hyperexp,
    raw_to_central,
    sample_moments,
)


class TestSampleMoments:
    def test_first_moment_is_mean(self):
        x = np.array([1.0, 2.0, 3.0])
        assert sample_moments(x, 1)[0] == pytest.approx(2.0)

    def test_three_moments(self):
        x = np.array([1.0, 2.0])
        m = sample_moments(x, 3)
        assert m[1] == pytest.approx(2.5)
        assert m[2] == pytest.approx(4.5)

    def test_rejects_k_zero(self):
        with pytest.raises(ValueError):
            sample_moments([1.0], 0)


class TestMomentConversions:
    def test_roundtrip(self):
        raw = np.array([2.0, 7.0, 30.0])
        central = raw_to_central(raw)
        back = central_to_raw(central[0], central[1:])
        assert np.allclose(back, raw)

    def test_known_values(self):
        # X in {0, 2} equally: mean 1, var 1, mu3 0.
        central = raw_to_central([1.0, 2.0, 4.0])
        assert central[0] == 1.0
        assert central[1] == pytest.approx(1.0)
        assert central[2] == pytest.approx(0.0)


class TestFitHyperErlang:
    def test_exact_moment_match_from_moments(self):
        fit = fit_hyper_erlang([10.0, 500.0, 60000.0])
        assert np.all(fit.relative_errors < 1e-8)

    def test_roundtrip_known_mixture(self):
        target = HyperExponential([0.3, 0.7], [0.01, 1.0])
        moments = [target.moment(k) for k in (1, 2, 3)]
        fit = fit_hyper_erlang(moments)
        assert fit.order == 1
        got = sorted(fit.distribution.rates)
        assert got[0] == pytest.approx(0.01, rel=1e-6)
        assert got[1] == pytest.approx(1.0, rel=1e-6)

    def test_fit_from_data(self, rng):
        data = rng.lognormal(2.0, 1.2, 30000)
        fit = fit_hyper_erlang(data)
        assert np.all(fit.relative_errors < 1e-8)

    def test_order_forced(self):
        fit = fit_hyper_erlang([10.0, 500.0, 60000.0], order=1)
        assert fit.order == 1

    def test_largest_order_at_least_smallest(self):
        moments = [10.0, 500.0, 60000.0]
        small = fit_hyper_erlang(moments, order="smallest")
        large = fit_hyper_erlang(moments, order="largest")
        assert large.order >= small.order

    def test_infeasible_raises(self):
        # Nearly deterministic: CV far below any order-bounded mixture.
        with pytest.raises(ValueError, match="no feasible"):
            fit_hyper_erlang([10.0, 100.0001, 1000.003], max_order=1)

    def test_bad_order_string(self):
        with pytest.raises(ValueError, match="order must be"):
            fit_hyper_erlang([10.0, 500.0, 60000.0], order="median")

    def test_negative_moment_rejected(self):
        with pytest.raises(ValueError):
            fit_hyper_erlang([-1.0, 2.0, 3.0])

    @given(
        p=st.floats(min_value=0.05, max_value=0.95),
        r1=st.floats(min_value=0.001, max_value=0.1),
        ratio=st.floats(min_value=5.0, max_value=500.0),
    )
    def test_property_recovers_two_branch_mixtures(self, p, r1, ratio):
        target = HyperExponential([p, 1.0 - p], [r1, r1 * ratio])
        moments = [target.moment(k) for k in (1, 2, 3)]
        fit = fit_hyper_erlang(moments, order=1)
        assert np.all(fit.relative_errors < 1e-6)


class TestFitTwoStageHyperexp:
    def test_matches_mean_and_cv(self):
        d = fit_two_stage_hyperexp(100.0, 3.0)
        assert d.mean() == pytest.approx(100.0, rel=1e-9)
        assert d.std() / d.mean() == pytest.approx(3.0, rel=1e-9)

    def test_cv_below_one_rejected(self):
        with pytest.raises(ValueError, match="cv < 1"):
            fit_two_stage_hyperexp(10.0, 0.5)

    def test_cv_one_degenerate(self):
        d = fit_two_stage_hyperexp(10.0, 1.0)
        assert d.mean() == pytest.approx(10.0, rel=1e-6)

    def test_bad_balance(self):
        with pytest.raises(ValueError, match="balance"):
            fit_two_stage_hyperexp(10.0, 2.0, balance=1.0)

    @given(
        mean=st.floats(min_value=0.1, max_value=1e4),
        cv=st.floats(min_value=1.05, max_value=20.0),
    )
    def test_property_mean_cv(self, mean, cv):
        d = fit_two_stage_hyperexp(mean, cv)
        assert d.mean() == pytest.approx(mean, rel=1e-6)
        assert d.std() / d.mean() == pytest.approx(cv, rel=1e-6)
