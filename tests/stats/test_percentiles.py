"""Tests for repro.stats.percentiles."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.stats.percentiles import (
    interval,
    interval50,
    interval90,
    median,
    percentile,
    summary_order_stats,
)

finite_arrays = hnp.arrays(
    float,
    st.integers(min_value=2, max_value=60),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)


class TestPercentile:
    def test_median_of_odd(self):
        assert median([3, 1, 2]) == 2.0

    def test_median_interpolates(self):
        assert median([1, 2, 3, 4]) == 2.5

    def test_extremes(self):
        x = [5, 1, 9]
        assert percentile(x, 0.0) == 1.0
        assert percentile(x, 1.0) == 9.0

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            percentile([1, 2], 1.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            median([])


class TestInterval:
    def test_90_interval_known(self):
        x = np.arange(101, dtype=float)  # 0..100
        assert interval90(x) == pytest.approx(90.0)

    def test_50_interval_known(self):
        x = np.arange(101, dtype=float)
        assert interval50(x) == pytest.approx(50.0)

    def test_constant_sample_zero_interval(self):
        assert interval90(np.full(10, 3.0)) == 0.0

    @given(finite_arrays)
    def test_interval_nonnegative_and_monotone(self, x):
        assert 0.0 <= interval(x, 0.5) <= interval(x, 0.9) + 1e-9

    @given(finite_arrays)
    def test_interval_bounded_by_range(self, x):
        assert interval(x, 0.9) <= (x.max() - x.min()) + 1e-9

    def test_robust_to_outlier(self):
        """Section 3's motivation: order moments ignore the extreme tail."""
        x = np.concatenate([np.random.default_rng(0).uniform(0, 100, 1000), [1e12]])
        base = np.sort(x)[:-1]
        assert interval90(x) == pytest.approx(interval90(base), rel=0.02)


class TestSummary:
    def test_fields(self):
        s = summary_order_stats(np.arange(101, dtype=float))
        assert s.median == pytest.approx(50.0)
        assert s.interval == pytest.approx(90.0)
        assert s.n == 101
        assert s.coverage == 0.9
        assert s.as_tuple() == (s.median, s.interval)

    def test_custom_coverage(self):
        s = summary_order_stats(np.arange(101, dtype=float), coverage=0.5)
        assert s.interval == pytest.approx(50.0)
