"""Tests for repro.stats.correlation."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.stats.correlation import (
    correlation_matrix,
    pearson,
    rankdata_average,
    spearman,
)

vec = hnp.arrays(
    float,
    st.integers(min_value=3, max_value=40),
    elements=st.floats(min_value=-1e5, max_value=1e5, allow_nan=False),
)


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert pearson(x, 2 * x + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_constant_gives_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_symmetry(self, rng):
        x, y = rng.normal(size=20), rng.normal(size=20)
        assert pearson(x, y) == pytest.approx(pearson(y, x))

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            pearson([1, 2], [1, 2, 3])

    @given(vec)
    def test_self_correlation(self, x):
        if np.std(x) > 0:
            assert pearson(x, x) == pytest.approx(1.0)

    @given(vec)
    def test_bounded(self, x):
        rng = np.random.default_rng(0)
        y = rng.normal(size=len(x))
        assert -1.0 <= pearson(x, y) <= 1.0

    def test_matches_numpy(self, rng):
        x, y = rng.normal(size=50), rng.normal(size=50)
        assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])


class TestRanks:
    def test_simple(self):
        assert np.array_equal(rankdata_average([30, 10, 20]), [3, 1, 2])

    def test_ties_average(self):
        assert np.array_equal(rankdata_average([1, 2, 2, 3]), [1, 2.5, 2.5, 4])

    def test_all_tied(self):
        out = rankdata_average([5, 5, 5])
        assert np.all(out == 2.0)


class TestSpearman:
    def test_monotone_nonlinear_is_one(self):
        x = np.arange(1.0, 11.0)
        assert spearman(x, np.exp(x)) == pytest.approx(1.0)

    def test_reversed_is_minus_one(self):
        x = np.arange(10.0)
        assert spearman(x, x[::-1]) == pytest.approx(-1.0)


class TestCorrelationMatrix:
    def test_diagonal_ones(self, rng):
        m = correlation_matrix(rng.normal(size=(30, 4)))
        assert np.allclose(np.diag(m), 1.0)

    def test_symmetric(self, rng):
        m = correlation_matrix(rng.normal(size=(30, 4)))
        assert np.allclose(m, m.T)

    def test_pairwise_nan_handling(self):
        data = np.array(
            [[1.0, 2.0, np.nan], [2.0, 4.0, 1.0], [3.0, 6.0, 2.0], [4.0, 8.0, 3.0]]
        )
        m = correlation_matrix(data)
        assert m[0, 1] == pytest.approx(1.0)
        assert m[0, 2] == pytest.approx(1.0)  # computed on 3 shared rows

    def test_too_few_shared_rows_gives_nan(self):
        data = np.array([[1.0, np.nan], [2.0, np.nan], [np.nan, 1.0]])
        m = correlation_matrix(data)
        assert math.isnan(m[0, 1])

    def test_spearman_mode(self, rng):
        x = rng.normal(size=40)
        data = np.column_stack([x, np.exp(x)])
        m = correlation_matrix(data, method="spearman")
        assert m[0, 1] == pytest.approx(1.0)

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="method"):
            correlation_matrix(np.zeros((3, 2)), method="kendall")
