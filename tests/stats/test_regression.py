"""Tests for repro.stats.regression."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.regression import linear_fit


class TestLinearFit:
    def test_exact_line(self):
        x = np.arange(10.0)
        fit = linear_fit(x, 3.0 * x - 2.0)
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(-2.0)
        assert fit.r_squared == pytest.approx(1.0)

    @given(
        slope=st.floats(min_value=-100, max_value=100),
        intercept=st.floats(min_value=-100, max_value=100),
    )
    def test_property_recovers_lines(self, slope, intercept):
        x = np.linspace(0, 5, 17)
        fit = linear_fit(x, slope * x + intercept)
        assert fit.slope == pytest.approx(slope, abs=1e-8)
        assert fit.intercept == pytest.approx(intercept, abs=1e-7)

    def test_noise_reduces_r2(self, rng):
        x = np.linspace(0, 10, 200)
        fit = linear_fit(x, x + rng.normal(0, 5.0, 200))
        assert fit.r_squared < 1.0

    def test_predict(self):
        fit = linear_fit([0.0, 1.0], [1.0, 3.0])
        assert np.allclose(fit.predict([2.0, 3.0]), [5.0, 7.0])

    def test_weights_pull_fit(self):
        x = np.array([0.0, 1.0, 2.0])
        y = np.array([0.0, 0.0, 10.0])
        unweighted = linear_fit(x, y)
        weighted = linear_fit(x, y, weights=[1.0, 1.0, 100.0])
        # Heavier weight on the last point pulls the line through it.
        assert abs(weighted.predict(2.0) - 10.0) < abs(unweighted.predict(2.0) - 10.0)

    def test_constant_y(self):
        fit = linear_fit([0.0, 1.0, 2.0], [5.0, 5.0, 5.0])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == 1.0

    def test_identical_x_rejected(self):
        with pytest.raises(ValueError, match="identical"):
            linear_fit([2.0, 2.0], [1.0, 3.0])

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            linear_fit([1.0, 2.0], [1.0])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            linear_fit([0.0, 1.0], [0.0, 1.0], weights=[-1.0, 1.0])

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError, match="not all be zero"):
            linear_fit([0.0, 1.0], [0.0, 1.0], weights=[0.0, 0.0])

    def test_n_recorded(self):
        assert linear_fit([0.0, 1.0, 2.0], [0.0, 1.0, 2.0]).n == 3
