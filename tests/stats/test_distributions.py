"""Tests for repro.stats.distributions."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.distributions import (
    Discrete,
    Erlang,
    Exponential,
    Gamma,
    HyperErlang,
    HyperExponential,
    HyperGamma,
    LogNormal,
    LogUniform,
    Mixture,
    Shifted,
    Truncated,
    TwoStageLogUniform,
    Uniform,
    Weibull,
)

ALL_DISTRIBUTIONS = [
    Exponential(0.5),
    Uniform(1.0, 5.0),
    LogUniform(1.0, 1000.0),
    TwoStageLogUniform(1.0, 50.0, 5000.0, 0.6),
    LogNormal(2.0, 1.5),
    Gamma(2.0, 3.0),
    Erlang(3, 0.25),
    Weibull(0.8, 100.0),
    HyperExponential([0.7, 0.3], [1.0, 0.01]),
    HyperErlang([0.4, 0.6], 2, [0.5, 0.005]),
    HyperGamma(0.6, 1.0, 50.0, 0.5, 2000.0),
    Shifted(Exponential(1.0), 5.0),
    Truncated(LogNormal(2.0, 1.5), hi=500.0),
    Discrete([1, 2, 4, 8, 16], [0.3, 0.25, 0.2, 0.15, 0.1]),
]

_IDS = [repr(d) for d in ALL_DISTRIBUTIONS]


@pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=_IDS)
class TestDistributionContract:
    """Invariants every distribution in the library must satisfy."""

    def test_cdf_monotone_and_bounded(self, dist):
        lo, hi = dist.support()
        xs = np.linspace(max(lo, 1e-6), min(hi, 1e6), 200)
        cdf = np.asarray(dist.cdf(xs), dtype=float)
        assert np.all(np.diff(cdf) >= -1e-12)
        assert np.all((cdf >= -1e-12) & (cdf <= 1 + 1e-12))

    def test_ppf_inverts_cdf(self, dist):
        qs = np.array([0.05, 0.25, 0.5, 0.75, 0.95])
        xs = np.asarray(dist.ppf(qs), dtype=float)
        back = np.asarray(dist.cdf(xs), dtype=float)
        # Generalized inverse: cdf(ppf(q)) >= q, tight for continuous dists.
        assert np.all(back >= qs - 1e-6)

    def test_ppf_monotone(self, dist):
        qs = np.linspace(0.01, 0.99, 50)
        xs = np.asarray(dist.ppf(qs), dtype=float)
        assert np.all(np.diff(xs) >= -1e-9)

    def test_sample_within_support(self, dist, rng):
        lo, hi = dist.support()
        x = dist.sample(500, rng)
        assert np.all(x >= lo - 1e-9)
        assert np.all(x <= hi + 1e-9)

    def test_sample_mean_close_to_analytic(self, dist, rng):
        x = dist.sample(40000, rng)
        mean = dist.mean()
        tol = 6.0 * dist.std() / math.sqrt(len(x))
        assert abs(x.mean() - mean) < max(tol, 0.02 * abs(mean) + 1e-9)

    def test_median_is_half_quantile(self, dist):
        med = dist.median()
        assert float(dist.cdf(med)) >= 0.5 - 1e-6

    def test_interval_non_negative_and_monotone_in_coverage(self, dist):
        i50 = dist.interval(0.5)
        i90 = dist.interval(0.9)
        assert 0 <= i50 <= i90 + 1e-9

    def test_var_non_negative(self, dist):
        assert dist.var() >= 0

    def test_sampling_deterministic_under_seed(self, dist):
        assert np.array_equal(dist.sample(10, seed=5), dist.sample(10, seed=5))

    def test_ppf_rejects_bad_quantiles(self, dist):
        with pytest.raises(ValueError):
            dist.ppf(1.5)


class TestExponential:
    def test_moments(self):
        d = Exponential(2.0)
        assert d.mean() == pytest.approx(0.5)
        assert d.var() == pytest.approx(0.25)
        assert d.moment(3) == pytest.approx(6 / 8.0)

    def test_median_formula(self):
        d = Exponential(1.0)
        assert d.median() == pytest.approx(math.log(2))

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            Exponential(0.0)


class TestUniform:
    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Uniform(2.0, 1.0)

    def test_pdf_constant_inside(self):
        d = Uniform(0.0, 2.0)
        assert float(d.pdf(1.0)) == pytest.approx(0.5)
        assert float(d.pdf(3.0)) == 0.0


class TestLogUniform:
    def test_log_is_uniform(self, rng):
        d = LogUniform(1.0, 100.0)
        x = np.log(d.sample(20000, rng))
        # Uniform on [0, log 100]: mean at the midpoint.
        assert x.mean() == pytest.approx(math.log(100) / 2, rel=0.05)

    def test_median_geometric_mean(self):
        d = LogUniform(1.0, 100.0)
        assert d.median() == pytest.approx(10.0)

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            LogUniform(10.0, 1.0)


class TestTwoStageLogUniform:
    def test_mass_split(self, rng):
        d = TwoStageLogUniform(1.0, 10.0, 1000.0, p_low=0.3)
        x = d.sample(20000, rng)
        assert np.mean(x <= 10.0) == pytest.approx(0.3, abs=0.02)

    def test_cdf_continuous_at_knee(self):
        d = TwoStageLogUniform(1.0, 10.0, 1000.0, p_low=0.3)
        eps = 1e-9
        assert float(d.cdf(10.0 - eps)) == pytest.approx(float(d.cdf(10.0 + eps)), abs=1e-6)

    def test_invalid_ordering(self):
        with pytest.raises(ValueError):
            TwoStageLogUniform(10.0, 5.0, 1000.0, 0.5)


class TestLogNormal:
    @given(
        median=st.floats(min_value=0.5, max_value=5000.0),
        ratio=st.floats(min_value=1.2, max_value=500.0),
    )
    def test_from_median_interval_roundtrip(self, median, ratio):
        interval = median * ratio
        d = LogNormal.from_median_interval(median, interval)
        assert d.median() == pytest.approx(median, rel=1e-6)
        assert d.interval(0.9) == pytest.approx(interval, rel=1e-6)

    def test_from_median_interval_alt_coverage(self):
        d = LogNormal.from_median_interval(100.0, 400.0, coverage=0.5)
        assert d.interval(0.5) == pytest.approx(400.0, rel=1e-9)

    def test_moment_formula(self):
        d = LogNormal(1.0, 0.5)
        assert d.moment(2) == pytest.approx(math.exp(2 + 0.5))


class TestGammaFamily:
    def test_erlang_is_integer_gamma(self):
        e = Erlang(3, 2.0)
        g = Gamma(3.0, 0.5)
        assert e.mean() == pytest.approx(g.mean())
        assert float(e.cdf(2.0)) == pytest.approx(float(g.cdf(2.0)))

    def test_erlang_rejects_non_integer(self):
        with pytest.raises(ValueError):
            Erlang(2.5, 1.0)

    def test_gamma_moment(self):
        g = Gamma(2.0, 3.0)
        # E[X^2] = var + mean^2 = 18 + 36.
        assert g.moment(2) == pytest.approx(54.0)


class TestWeibull:
    def test_shape_one_is_exponential(self):
        w = Weibull(1.0, 10.0)
        e = Exponential(0.1)
        assert w.mean() == pytest.approx(e.mean())
        assert float(w.cdf(5.0)) == pytest.approx(float(e.cdf(5.0)))


class TestMixtures:
    def test_probs_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            Mixture([0.5, 0.2], [Exponential(1.0), Exponential(2.0)])

    def test_negative_prob_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Mixture([1.5, -0.5], [Exponential(1.0), Exponential(2.0)])

    def test_mixture_mean_is_weighted(self):
        m = HyperExponential([0.25, 0.75], [1.0, 0.1])
        assert m.mean() == pytest.approx(0.25 * 1.0 + 0.75 * 10.0)

    def test_hyper_exponential_cv_above_one(self, rng):
        m = HyperExponential([0.5, 0.5], [10.0, 0.1])
        assert m.std() / m.mean() > 1.0

    def test_hyper_erlang_moments(self):
        he = HyperErlang([0.3, 0.7], 2, [1.0, 0.1])
        # Erlang(2, r): E[X] = 2/r, E[X^2] = 6/r^2.
        assert he.mean() == pytest.approx(0.3 * 2.0 + 0.7 * 20.0)
        assert he.moment(2) == pytest.approx(0.3 * 6.0 + 0.7 * 600.0)

    def test_hyper_gamma_components(self):
        hg = HyperGamma(0.5, 2.0, 1.0, 4.0, 2.0)
        assert hg.mean() == pytest.approx(0.5 * 2.0 + 0.5 * 8.0)


class TestAdapters:
    def test_shifted_quantiles(self):
        base = Exponential(1.0)
        s = Shifted(base, 10.0)
        assert s.median() == pytest.approx(base.median() + 10.0)
        assert s.var() == pytest.approx(base.var())

    def test_truncated_support(self):
        t = Truncated(Exponential(1.0), lo=1.0, hi=3.0)
        x = t.sample(1000, seed=0)
        assert x.min() >= 1.0 and x.max() <= 3.0

    def test_truncated_zero_mass_rejected(self):
        with pytest.raises(ValueError, match="zero probability"):
            Truncated(Uniform(0.0, 1.0), lo=5.0, hi=6.0)

    def test_truncated_cdf_normalized(self):
        t = Truncated(Exponential(1.0), hi=2.0)
        assert float(t.cdf(2.0)) == pytest.approx(1.0)


class TestDiscrete:
    def test_ppf_steps(self):
        d = Discrete([1, 2, 4], [0.5, 0.25, 0.25])
        assert float(d.ppf(0.4)) == 1.0
        assert float(d.ppf(0.6)) == 2.0
        assert float(d.ppf(0.99)) == 4.0

    def test_cdf_step_values(self):
        d = Discrete([1, 2, 4], [0.5, 0.25, 0.25])
        assert float(d.cdf(1.0)) == pytest.approx(0.5)
        assert float(d.cdf(3.9)) == pytest.approx(0.75)

    def test_duplicate_support_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            Discrete([1, 1, 2], [0.3, 0.3, 0.4])

    def test_probs_normalized(self):
        d = Discrete([1, 2], [2.0, 6.0])
        assert d.probs[0] == pytest.approx(0.25)

    def test_mean_var(self):
        d = Discrete([0, 10], [0.5, 0.5])
        assert d.mean() == pytest.approx(5.0)
        assert d.var() == pytest.approx(25.0)

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=8, unique=True))
    def test_ppf_hits_support(self, values):
        d = Discrete(values, np.ones(len(values)))
        qs = np.linspace(0.01, 0.99, 23)
        out = np.asarray(d.ppf(qs))
        assert set(np.unique(out)) <= set(np.asarray(values, dtype=float))
