"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# One moderate profile for the whole suite: enough examples to matter,
# fast enough to keep the full run comfortably under a minute.
settings.register_profile(
    "repro",
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for test-local randomness."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_machine():
    from repro.workload import MachineInfo

    return MachineInfo(
        "testbox", 64, scheduler_flexibility=2, allocation_flexibility=3
    )


@pytest.fixture
def small_workload(small_machine, rng):
    """A 500-job workload with every SWF field populated."""
    from repro.workload import Workload

    n = 500
    gaps = rng.exponential(60.0, n)
    return Workload.from_arrays(
        machine=small_machine,
        name="small",
        submit_time=np.cumsum(gaps) - gaps[0],
        wait_time=rng.exponential(30.0, n),
        run_time=rng.lognormal(4.0, 1.5, n),
        used_procs=rng.choice([1, 2, 4, 8, 16, 32, 64], n),
        avg_cpu_time=rng.lognormal(3.5, 1.5, n),
        user_id=rng.integers(0, 25, n),
        executable_id=rng.integers(0, 40, n),
        status=rng.choice([0, 1, 1, 1, 5], n),
        queue=rng.choice([1, 2], n),
    )


@pytest.fixture(scope="session")
def synthesized_ctc():
    """A moderately sized synthesized CTC log shared across tests."""
    from repro.archive import synthesize_workload

    return synthesize_workload("CTC", n_jobs=6000, seed=11)
