"""Tests for the model-validation framework and its GOF substrate."""

import math

import numpy as np
import pytest

from repro.models import LublinModel, rank_models, validate_model
from repro.stats import empirical_cdf, ks_statistic, qq_log_distance


class TestGof:
    def test_ks_identical_zero(self, rng):
        x = rng.lognormal(1.0, 1.0, 2000)
        assert ks_statistic(x, x) == 0.0

    def test_ks_disjoint_one(self):
        assert ks_statistic([1.0, 2.0], [10.0, 20.0]) == 1.0

    def test_ks_symmetric(self, rng):
        a, b = rng.normal(size=500), rng.normal(1.0, 1.0, 700)
        assert ks_statistic(a, b) == pytest.approx(ks_statistic(b, a))

    def test_ks_matches_scipy(self, rng):
        from scipy import stats as spstats

        a, b = rng.normal(size=400), rng.normal(0.5, 2.0, 300)
        ours = ks_statistic(a, b)
        theirs = spstats.ks_2samp(a, b).statistic
        assert ours == pytest.approx(theirs, abs=1e-12)

    def test_qq_identical_zero(self, rng):
        x = rng.lognormal(1.0, 1.0, 2000)
        assert qq_log_distance(x, x) == pytest.approx(0.0, abs=1e-12)

    def test_qq_scale_shift_reads_in_decades(self, rng):
        x = rng.lognormal(1.0, 1.0, 20000)
        assert qq_log_distance(10.0 * x, x) == pytest.approx(1.0, abs=0.01)

    def test_qq_floor_protects_zeros(self):
        a = np.zeros(100)
        b = np.ones(100)
        assert math.isfinite(qq_log_distance(a, b))

    def test_empirical_cdf(self):
        f = empirical_cdf([1.0, 2.0, 3.0, 4.0], [0.0, 2.0, 5.0])
        assert np.allclose(f, [0.0, 0.5, 1.0])

    def test_qq_validation(self):
        with pytest.raises(ValueError):
            qq_log_distance([1.0, 2.0], [1.0, 2.0], n_quantiles=2)


class TestValidateModel:
    def test_self_comparison_scores_near_zero(self, synthesized_ctc):
        report = validate_model(synthesized_ctc, synthesized_ctc)
        assert report.variable_score() == pytest.approx(0.0, abs=1e-9)
        assert report.marginal_score() == pytest.approx(0.0, abs=1e-9)
        assert report.score() < 0.02

    def test_model_instance_accepted(self, synthesized_ctc):
        report = validate_model(
            LublinModel(), synthesized_ctc, n_jobs=3000, include_hurst=False
        )
        assert report.model_name == "Lublin"
        assert report.score() > 0.0

    def test_model_name_accepted(self, synthesized_ctc):
        report = validate_model(
            "Downey", synthesized_ctc, n_jobs=3000, include_hurst=False
        )
        assert report.model_name == "Downey"

    def test_report_fields(self, synthesized_ctc):
        report = validate_model(
            "Lublin", synthesized_ctc, n_jobs=3000, include_hurst=False
        )
        assert {v.sign for v in report.variables} <= {
            "Rm", "Ri", "Pm", "Pi", "Cm", "Ci", "Im", "Ii"
        }
        assert {m.attribute for m in report.marginals} == {
            "run_time", "used_procs", "interarrival"
        }
        assert "order statistics" in report.render()

    def test_hurst_toggle(self, synthesized_ctc):
        fast = validate_model(
            "Lublin", synthesized_ctc, n_jobs=3000, include_hurst=False
        )
        assert fast.hurst_delta == {}
        assert not math.isnan(fast.score())

    def test_log_ratio_semantics(self):
        from repro.models.validation import VariableFit

        assert VariableFit("Rm", 100.0, 10.0).log_ratio == pytest.approx(1.0)
        assert math.isnan(VariableFit("Rm", 0.0, 10.0).log_ratio)


class TestRankModels:
    @pytest.fixture(scope="class")
    def ranked(self, synthesized_ctc):
        return rank_models(synthesized_ctc, n_jobs=6000, seed=0)

    def test_returns_all_five_sorted(self, ranked):
        assert len(ranked) == 5
        scores = [r.score() for r in ranked]
        assert scores == sorted(scores)

    def test_jann_wins_on_ctc(self, ranked):
        """Jann was fitted to (our) CTC: it must out-rank the other models
        on a CTC-like reference — the Figure 4 verdict as an API."""
        assert ranked[0].model_name == "Jann"

    def test_early_models_fit_ctc_poorly(self, ranked):
        order = [r.model_name for r in ranked]
        assert order.index("Jann") < order.index("Feitelson96")
        assert order.index("Jann") < order.index("Feitelson97")

    def test_custom_model_set(self, synthesized_ctc):
        reports = rank_models(
            synthesized_ctc,
            models=["Lublin", LublinModel(machine_procs=64)],
            n_jobs=2000,
            include_hurst=False,
        )
        assert len(reports) == 2
