"""Tests for the user-session (multi-class) workload model."""

import numpy as np
import pytest

from repro.models import UserSessionModel
from repro.selfsim import binned_counts, hurst_summary
from repro.workload import compute_statistics


@pytest.fixture(scope="module")
def stream():
    return UserSessionModel(n_users=32).generate(8000, seed=0)


class TestStructure:
    def test_stream_validity(self, stream):
        assert len(stream) == 8000
        assert np.all(stream.column("used_procs") >= 1)
        assert np.all(stream.column("run_time") >= 0)
        assert np.all(np.diff(stream.column("submit_time")) >= 0)

    def test_user_population_respected(self, stream):
        users = np.unique(stream.column("user_id"))
        assert users.size <= 32
        assert users.size > 16  # most users contribute

    def test_one_executable_per_user(self, stream):
        users = stream.column("user_id")
        execs = stream.column("executable_id")
        for uid in np.unique(users)[:10]:
            assert np.unique(execs[users == uid]).size == 1

    def test_users_have_characteristic_sizes(self, stream):
        users = stream.column("user_id")
        procs = stream.column("used_procs")
        for uid in np.unique(users)[:10]:
            assert np.unique(procs[users == uid]).size == 1

    def test_sessions_are_sequential_per_user(self, stream):
        """Within a session, a user's next submit follows the previous
        job's completion (submit + runtime <= next submit)."""
        users = stream.column("user_id")
        submit = stream.column("submit_time")
        run = stream.column("run_time")
        uid = np.unique(users)[0]
        mask = users == uid
        s, r = submit[mask], run[mask]
        order = np.argsort(s)
        s, r = s[order], r[order]
        # Every next submit is after the previous job ends (think >= 0).
        assert np.all(s[1:] >= s[:-1] + r[:-1] - 1e-6)

    def test_think_times_recorded(self, stream):
        assert np.all(stream.column("think_time") >= 0)

    def test_deterministic(self):
        a = UserSessionModel().generate(1000, seed=5)
        b = UserSessionModel().generate(1000, seed=5)
        assert np.array_equal(a.column("submit_time"), b.column("submit_time"))

    def test_validation(self):
        with pytest.raises(ValueError, match="session_tail"):
            UserSessionModel(session_tail=1.0)
        with pytest.raises(ValueError, match="n_users"):
            UserSessionModel(n_users=0)


class TestWorkloadCharacter:
    def test_low_normalized_users(self, stream):
        """Repeated per-user work gives the archive-typical tiny U and E
        ratios (Table 1: 0.001-0.03)."""
        stats = compute_statistics(stream)
        assert stats.norm_users < 0.02
        assert stats.norm_executables < 0.02

    def test_statistics_computable(self, stream):
        signs = compute_statistics(stream).by_sign()
        for key in ("Rm", "Ri", "Pm", "Pi", "Im", "Ii"):
            assert signs[key] > 0


class TestSelfSimilarityEmergence:
    """Section 9's conjecture, demonstrated: heavy-tailed human sessions
    make the aggregate workload self-similar; light-tailed ones do not."""

    @staticmethod
    def _counts_h(tail: float, seed: int) -> float:
        w = UserSessionModel(session_tail=tail).generate(30000, seed=seed)
        counts = binned_counts(w, 1800.0)
        return float(np.mean(list(hurst_summary(counts).values())))

    def test_heavy_sessions_are_lrd(self):
        assert self._counts_h(1.2, seed=1) > 0.68

    def test_heavy_beats_light(self):
        heavy = self._counts_h(1.2, seed=1)
        light = self._counts_h(8.0, seed=1)
        assert heavy > light + 0.05
