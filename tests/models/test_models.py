"""Tests shared across all five synthetic workload models."""

import numpy as np
import pytest

from repro.models import (
    DowneyModel,
    Feitelson96Model,
    Feitelson97Model,
    JannModel,
    LublinModel,
    WorkloadModel,
    all_models,
    create_model,
    MODEL_NAMES,
)

SIMPLE_MODELS = [Feitelson96Model, Feitelson97Model, DowneyModel, LublinModel]


@pytest.fixture(scope="module")
def jann_model(synthesized_ctc):
    return JannModel.fit(synthesized_ctc)


def model_instances(jann):
    return [cls() for cls in SIMPLE_MODELS] + [jann]


class TestModelContract:
    @pytest.mark.parametrize("cls", SIMPLE_MODELS)
    def test_stream_validity(self, cls):
        model = cls()
        w = model.generate(2000, seed=0)
        assert len(w) == 2000
        procs = w.column("used_procs")
        assert np.all(procs >= 1)
        assert np.all(procs <= model.machine_procs)
        assert np.all(w.column("run_time") >= 0)
        submit = w.column("submit_time")
        assert np.all(np.diff(submit) >= 0)  # sorted by submit
        assert submit[0] == pytest.approx(0.0, abs=1e-6)

    @pytest.mark.parametrize("cls", SIMPLE_MODELS)
    def test_deterministic_under_seed(self, cls):
        a = cls().generate(500, seed=3)
        b = cls().generate(500, seed=3)
        assert np.array_equal(a.column("run_time"), b.column("run_time"))
        assert np.array_equal(a.column("submit_time"), b.column("submit_time"))

    @pytest.mark.parametrize("cls", SIMPLE_MODELS)
    def test_seeds_differ(self, cls):
        a = cls().generate(500, seed=1)
        b = cls().generate(500, seed=2)
        assert not np.array_equal(a.column("run_time"), b.column("run_time"))

    @pytest.mark.parametrize("cls", SIMPLE_MODELS)
    def test_machine_metadata(self, cls):
        model = cls(machine_procs=64)
        w = model.generate(200, seed=0)
        assert w.machine.processors == 64
        assert w.name == model.name

    @pytest.mark.parametrize("cls", SIMPLE_MODELS)
    def test_rejects_bad_args(self, cls):
        with pytest.raises(ValueError):
            cls(machine_procs=0)
        with pytest.raises(ValueError):
            cls().generate(0)

    @pytest.mark.parametrize("cls", SIMPLE_MODELS)
    def test_statistics_shortcut(self, cls):
        stats = cls().statistics(n_jobs=2000, seed=0)
        signs = stats.by_sign()
        for key in ("Rm", "Ri", "Pm", "Pi", "Cm", "Ci", "Im", "Ii"):
            assert signs[key] > 0


class TestFeitelson:
    def test_power_of_two_emphasis(self):
        w = Feitelson96Model().generate(8000, seed=0)
        procs = w.column("used_procs")
        pow2 = (procs & (procs - 1)) == 0
        assert pow2.mean() > 0.5

    def test_97_stronger_pow2_emphasis(self):
        p96 = Feitelson96Model().generate(8000, seed=0).column("used_procs")
        p97 = Feitelson97Model().generate(8000, seed=0).column("used_procs")
        frac96 = ((p96 & (p96 - 1)) == 0).mean()
        frac97 = ((p97 & (p97 - 1)) == 0).mean()
        assert frac97 > frac96

    def test_size_runtime_correlation_positive(self):
        w = Feitelson96Model().generate(12000, seed=0)
        procs = w.column("used_procs").astype(float)
        run = w.column("run_time")
        corr = np.corrcoef(np.log(procs), np.log(run + 1))[0, 1]
        assert corr > 0.1

    def test_repetitions_share_size_and_runtime(self):
        w = Feitelson96Model().generate(4000, seed=0)
        execs = w.column("executable_id")
        run = w.column("run_time")
        procs = w.column("used_procs")
        for eid in np.unique(execs)[:50]:
            mask = execs == eid
            assert np.unique(run[mask]).size == 1
            assert np.unique(procs[mask]).size == 1

    def test_repetitions_back_to_back(self):
        """Pure model: a repeat is submitted when the previous run ends."""
        w = Feitelson96Model().generate(4000, seed=0)
        execs = w.column("executable_id")
        submit = w.column("submit_time")
        run = w.column("run_time")
        checked = 0
        for eid in np.unique(execs):
            idx = np.flatnonzero(execs == eid)
            if len(idx) < 2:
                continue
            times = np.sort(submit[idx])
            gap = np.diff(times)
            assert np.allclose(gap, run[idx[0]], rtol=1e-9)
            checked += 1
            if checked > 20:
                break
        assert checked > 0

    def test_repeat_counts_heavy_tailed(self):
        from repro.models.feitelson96 import repetition_distribution

        dist = repetition_distribution(order=2.5, max_repeats=64)
        assert float(dist.pdf(1.0)) > 0.7
        assert dist.mean() < 2.0

    def test_harmonic_sizes_monotone(self):
        from repro.models.feitelson96 import harmonic_pow2_sizes

        dist = harmonic_pow2_sizes(64)
        # Small non-pow2 sizes outweigh larger non-pow2 sizes.
        assert float(dist.pdf(3.0)) > float(dist.pdf(5.0))
        # Power-of-two boost: 4 outweighs 3 despite being larger.
        assert float(dist.pdf(4.0)) > float(dist.pdf(3.0))


class TestDowney:
    def test_runtime_times_procs_is_service(self):
        m = DowneyModel()
        w = m.generate(5000, seed=0)
        service = w.column("run_time") * w.column("used_procs")
        lo, hi = m.service.support()
        # Rounding of parallelism perturbs the product slightly.
        assert service.min() >= lo * 0.4
        assert service.max() <= hi * 2.6

    def test_sequential_fraction(self):
        m = DowneyModel(p_sequential=0.5)
        w = m.generate(8000, seed=0)
        assert (w.column("used_procs") == 1).mean() == pytest.approx(0.5, abs=0.03)

    def test_service_validation(self):
        with pytest.raises(ValueError, match="service"):
            DowneyModel(service_lo=10.0, service_knee=5.0, service_hi=100.0)

    def test_single_proc_machine(self):
        w = DowneyModel(machine_procs=1).generate(500, seed=0)
        assert np.all(w.column("used_procs") == 1)


class TestLublin:
    def test_serial_fraction(self):
        m = LublinModel(serial_prob=0.3)
        w = m.generate(8000, seed=0)
        assert (w.column("used_procs") == 1).mean() == pytest.approx(0.3, abs=0.03)

    def test_pow2_emphasis(self):
        w = LublinModel().generate(8000, seed=0)
        procs = w.column("used_procs")
        parallel = procs[procs > 1]
        pow2 = (parallel & (parallel - 1)) == 0
        assert pow2.mean() > 0.5

    def test_interarrival_median_on_target(self):
        m = LublinModel(median_interarrival=200.0, cycle_amplitude=0.0)
        w = m.generate(10000, seed=0)
        gaps = np.diff(w.column("submit_time"))
        assert np.median(gaps) == pytest.approx(200.0, rel=0.1)

    def test_daily_cycle_concentrates_arrivals(self):
        busy = LublinModel(cycle_amplitude=0.9, median_interarrival=30.0)
        flat = LublinModel(cycle_amplitude=0.0, median_interarrival=30.0)
        for model, expect_cycle in ((busy, True), (flat, False)):
            w = model.generate(20000, seed=0)
            hours = (w.column("submit_time") / 3600.0) % 24.0
            counts, _ = np.histogram(hours, bins=24)
            ratio = counts.max() / max(counts.min(), 1)
            if expect_cycle:
                assert ratio > 1.5
            else:
                assert ratio < 1.5

    def test_size_runtime_correlation(self):
        w = LublinModel().generate(12000, seed=0)
        procs = w.column("used_procs").astype(float)
        run = w.column("run_time")
        assert np.corrcoef(np.log(procs + 1), np.log(run + 1))[0, 1] > 0.05

    def test_validation(self):
        with pytest.raises(ValueError, match="cycle_amplitude"):
            LublinModel(cycle_amplitude=1.5)
        with pytest.raises(ValueError, match="n_users"):
            LublinModel(n_users=0)


class TestJann:
    def test_fit_produces_valid_model(self, jann_model, synthesized_ctc):
        assert jann_model.machine_procs == synthesized_ctc.machine.processors
        assert len(jann_model.ranges) >= 3

    def test_generated_sizes_within_ranges(self, jann_model):
        w = jann_model.generate(3000, seed=0)
        procs = w.column("used_procs")
        legal = set()
        for r in jann_model.ranges:
            legal.update(range(r.lo, r.hi + 1))
        assert set(np.unique(procs)) <= legal

    def test_runtime_moments_tracked(self, jann_model, synthesized_ctc):
        """The fit matches three moments per range, so the overall mean
        runtime should be in the right ballpark."""
        w = jann_model.generate(20000, seed=0)
        ref = synthesized_ctc.column("run_time")
        got = w.column("run_time")
        assert got.mean() == pytest.approx(ref.mean(), rel=0.5)

    def test_range_probabilities_match_reference(self, jann_model, synthesized_ctc):
        w = jann_model.generate(20000, seed=0)
        ref_serial = (synthesized_ctc.column("used_procs") == 1).mean()
        got_serial = (w.column("used_procs") == 1).mean()
        assert got_serial == pytest.approx(ref_serial, abs=0.05)

    def test_power_of_two_ranges_structure(self):
        from repro.models.jann import power_of_two_ranges

        assert power_of_two_ranges(8) == [(1, 1), (2, 2), (3, 4), (5, 8)]
        assert power_of_two_ranges(10)[-1] == (9, 10)

    def test_fit_rejects_tiny_workload(self, small_machine):
        from repro.workload import Workload

        w = Workload.from_arrays(
            machine=small_machine, submit_time=[0.0, 1.0], run_time=[1.0, 2.0],
            used_procs=[1, 2],
        )
        with pytest.raises(ValueError, match="usable jobs"):
            JannModel.fit(w)

    def test_empty_ranges_rejected(self):
        from repro.stats.distributions import Exponential

        with pytest.raises(ValueError, match="at least one"):
            JannModel([], Exponential(1.0))


class TestRegistry:
    def test_names(self):
        assert MODEL_NAMES == ("Feitelson96", "Feitelson97", "Downey", "Jann", "Lublin")

    def test_create_each(self):
        for name in MODEL_NAMES:
            model = create_model(name)
            assert isinstance(model, WorkloadModel)
            assert model.name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown model"):
            create_model("Mystery")

    def test_all_models(self):
        models = all_models()
        assert [m.name for m in models] == list(MODEL_NAMES)
