"""Tests for the Section 8 parametric workload model."""

import math

import numpy as np
import pytest

from repro.archive.targets import PRODUCTION_NAMES, TABLE1
from repro.models.parametric import ParametricWorkloadModel
from repro.workload import compute_statistics


@pytest.fixture(scope="module")
def model():
    return ParametricWorkloadModel()


class TestFit:
    def test_fits_scale_and_load_variables(self, model):
        fitted = set(model.regressions)
        assert {"Rm", "Ri", "Pi", "Cm", "Ci", "Ii", "RL"} <= fitted

    def test_well_correlated_variables_fit_well(self, model):
        """Ii sits in the same Figure 1 cluster as Im: the regression on
        (AL, Pm, Im) must capture most of its variance."""
        assert model.regressions["Ii"].r_squared > 0.7
        assert model.regressions["Pi"].r_squared > 0.7

    def test_needs_enough_references(self):
        ref = {n: TABLE1[n] for n in list(PRODUCTION_NAMES)[:3]}
        with pytest.raises(ValueError, match="at least 5"):
            ParametricWorkloadModel(ref)

    def test_custom_reference_accepted(self):
        ref = {n: TABLE1[n] for n in list(PRODUCTION_NAMES)[:6]}
        m = ParametricWorkloadModel(ref)
        assert m.regressions


class TestPredict:
    def test_keys(self, model):
        pred = model.predict_variables(2, 8.0, 120.0)
        assert pred["AL"] == 2.0 and pred["Pm"] == 8.0 and pred["Im"] == 120.0
        assert pred["Rm"] > 0 and pred["Ii"] > 0

    def test_loads_clipped(self, model):
        pred = model.predict_variables(3, 1.0, 10000.0)
        assert 0.01 <= pred["RL"] <= 0.95

    def test_monotone_in_interarrival(self, model):
        """Longer inter-arrival medians predict longer Ii (same cluster)."""
        low = model.predict_variables(2, 8.0, 20.0)
        high = model.predict_variables(2, 8.0, 500.0)
        assert high["Ii"] > low["Ii"]

    def test_validation(self, model):
        with pytest.raises(ValueError, match="AL"):
            model.predict_variables(4, 8.0, 120.0)
        with pytest.raises(ValueError):
            model.predict_variables(2, -1.0, 120.0)


class TestGenerate:
    def test_stream_matches_inputs(self, model):
        w = model.generate(4000, al=2, pm=8.0, im=150.0, seed=0)
        stats = compute_statistics(w).by_sign()
        assert stats["Pm"] == pytest.approx(8.0, rel=0.25)
        assert stats["Im"] == pytest.approx(150.0, rel=0.05)

    def test_stream_matches_predictions(self, model):
        pred = model.predict_variables(2, 8.0, 150.0)
        w = model.generate(4000, al=2, pm=8.0, im=150.0, seed=0)
        stats = compute_statistics(w).by_sign()
        assert stats["Rm"] == pytest.approx(pred["Rm"], rel=0.05)
        assert stats["Ri"] == pytest.approx(pred["Ri"], rel=0.1)

    def test_pow2_machine_for_al1(self, model):
        w = model.generate(2000, al=1, pm=8.0, im=150.0, seed=0)
        procs = w.column("used_procs")
        assert np.all((procs & (procs - 1)) == 0)

    def test_self_similarity_toggle(self, model):
        from repro.selfsim import hurst_summary, workload_series

        on = model.generate(12000, seed=1, self_similar=True)
        off = model.generate(12000, seed=1, self_similar=False)
        h_on = np.mean(list(hurst_summary(workload_series(on, "interarrival")).values()))
        h_off = np.mean(list(hurst_summary(workload_series(off, "interarrival")).values()))
        assert h_on > h_off + 0.05

    def test_hurst_override(self, model):
        from repro.selfsim import hurst_summary, workload_series

        w = model.generate(12000, seed=2, hurst={"interarrival": 0.9})
        h = np.mean(list(hurst_summary(workload_series(w, "interarrival")).values()))
        assert h > 0.7

    def test_deterministic(self, model):
        a = model.generate(1000, seed=9)
        b = model.generate(1000, seed=9)
        assert np.array_equal(a.column("run_time"), b.column("run_time"))

    def test_pm_clipped_to_machine(self, model):
        w = model.generate(1000, al=2, pm=500.0, im=100.0, machine_procs=64, seed=0)
        assert w.column("used_procs").max() <= 64


class TestLeaveOneOut:
    def test_covers_reference_workloads(self, model):
        loo = model.leave_one_out()
        assert set(loo) == set(PRODUCTION_NAMES)

    def test_pairs_have_positive_actuals(self, model):
        loo = model.leave_one_out()
        for pairs in loo.values():
            for pred, actual in pairs.values():
                assert pred > 0 and actual > 0

    def test_interarrival_interval_predictable(self, model):
        """The Ii variable (tightly clustered with Im) predicts within
        half an order of magnitude for most held-out workloads."""
        loo = model.leave_one_out(signs=("Ii",))
        errors = [
            abs(math.log10(p / a)) for pairs in loo.values() for p, a in pairs.values()
        ]
        assert np.median(errors) < 0.35
