"""Bit-for-bit equivalence of the batched model samplers vs their scalar
reference oracles.

Every model that grew an ``engine="batched"`` sampler keeps its original
scalar generation loop as ``engine="reference"``; these tests pin the
tentpole claim that both consume the identical RNG stream and emit the
identical job arrays — not approximately, bitwise.
"""

import numpy as np
import pytest

from repro.models import (
    Feitelson96Model,
    JannModel,
    LublinModel,
    UserSessionModel,
    create_model,
)
from repro.workload.fields import FIELD_NAMES

SEEDS = list(range(5))


def assert_streams_identical(a, b):
    assert len(a) == len(b)
    for name in FIELD_NAMES:
        np.testing.assert_array_equal(
            a.column(name), b.column(name), err_msg=f"column {name}"
        )


def both(model, n_jobs, seed):
    return (
        model.generate(n_jobs, seed=seed, engine="batched"),
        model.generate(n_jobs, seed=seed, engine="reference"),
    )


class TestLublinEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_bitwise_across_seeds(self, seed):
        assert_streams_identical(*both(LublinModel(), 3000, seed))

    def test_single_job(self):
        assert_streams_identical(*both(LublinModel(), 1, 0))

    def test_single_processor_machine(self):
        assert_streams_identical(*both(LublinModel(machine_procs=1), 500, 2))

    def test_flat_daily_cycle(self):
        assert_streams_identical(*both(LublinModel(cycle_amplitude=0.0), 800, 1))

    def test_extreme_daily_cycle(self):
        assert_streams_identical(*both(LublinModel(cycle_amplitude=0.95), 800, 3))


class TestFeitelson96Equivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_bitwise_across_seeds(self, seed):
        assert_streams_identical(*both(Feitelson96Model(), 3000, seed))

    def test_single_job(self):
        assert_streams_identical(*both(Feitelson96Model(), 1, 0))

    def test_repeat_truncation_boundary(self):
        # Small n_jobs exercises cutting the final repeat group mid-run.
        for n in (2, 3, 7, 17):
            assert_streams_identical(*both(Feitelson96Model(), n, 4))


class TestJannEquivalence:
    @pytest.fixture(scope="class")
    def model(self, synthesized_ctc):
        return JannModel.fit(synthesized_ctc)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_bitwise_across_seeds(self, model, seed):
        assert_streams_identical(*both(model, 2000, seed))

    def test_single_job(self, model):
        assert_streams_identical(*both(model, 1, 0))


class TestUserSessionEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_bitwise_across_seeds(self, seed):
        assert_streams_identical(*both(UserSessionModel(n_users=16), 2500, seed))

    def test_single_job(self):
        assert_streams_identical(*both(UserSessionModel(n_users=4), 1, 0))

    def test_single_user(self):
        assert_streams_identical(*both(UserSessionModel(n_users=1), 400, 1))

    def test_single_processor_machine(self):
        assert_streams_identical(
            *both(UserSessionModel(n_users=8, machine_procs=1), 600, 2)
        )


class TestEngineSelection:
    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            LublinModel().generate(10, seed=0, engine="turbo")

    def test_registry_threads_engine(self):
        m = create_model("Lublin", engine="reference")
        assert m.engine == "reference"
        assert_streams_identical(
            m.generate(300, seed=5), LublinModel().generate(300, seed=5)
        )

    def test_per_call_engine_overrides_instance(self):
        m = LublinModel()
        m.engine = "reference"
        a = m.generate(300, seed=6, engine="batched")
        b = LublinModel().generate(300, seed=6)
        assert_streams_identical(a, b)
