"""Property tests for the open/closed-loop arrival front ends."""

import numpy as np
import pytest

from repro.models import ClosedLoopArrivals, LublinModel, OpenLoopArrivals


class TestOpenLoop:
    def test_rate_matches_configuration(self):
        proc = OpenLoopArrivals(mean_active_users=30.0, per_user_rate_per_min=2.0)
        times = proc.sample_times(20_000, seed=0)
        measured = (times.size - 1) / (times[-1] - times[0])
        assert measured == pytest.approx(proc.expected_rate(), rel=0.05)

    def test_times_sorted_and_nonnegative(self):
        times = OpenLoopArrivals(5.0, 1.0).sample_times(5_000, seed=1)
        assert np.all(np.diff(times) >= 0)
        assert np.all(times >= 0)

    def test_deterministic_under_seed(self):
        proc = OpenLoopArrivals(10.0, 3.0)
        np.testing.assert_array_equal(
            proc.sample_times(2_000, seed=5), proc.sample_times(2_000, seed=5)
        )
        assert not np.array_equal(
            proc.sample_times(2_000, seed=5), proc.sample_times(2_000, seed=6)
        )

    def test_normal_user_distribution(self):
        proc = OpenLoopArrivals(
            20.0, 2.0, users_distribution="normal", users_std=5.0
        )
        times = proc.sample_times(15_000, seed=2)
        measured = (times.size - 1) / (times[-1] - times[0])
        assert measured == pytest.approx(proc.expected_rate(), rel=0.08)

    def test_burstier_than_plain_poisson(self):
        # Doubly-stochastic arrivals overdisperse window counts relative
        # to a Poisson process of the same mean rate.
        proc = OpenLoopArrivals(10.0, 6.0, window_s=60.0, users_std=None)
        times = proc.sample_times(30_000, seed=3)
        counts = np.bincount((times // 60.0).astype(int))[:-1]
        assert counts.var() > 1.2 * counts.mean()

    def test_drive_replaces_arrivals_only(self):
        model = LublinModel()
        proc = OpenLoopArrivals(25.0, 4.0)
        driven = proc.drive(model, 2_000, seed=0)
        assert len(driven) == 2_000
        assert np.all(np.diff(driven.column("submit_time")) >= 0)
        from repro.util.rng import spawn_children

        model_rng, _ = spawn_children(0, 2)
        native = model.generate(2_000, seed=model_rng)
        # Same job bodies, different arrival pattern.
        assert np.array_equal(
            np.sort(driven.column("run_time")), np.sort(native.column("run_time"))
        )
        assert not np.array_equal(
            driven.column("submit_time"), native.column("submit_time")
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="users_distribution"):
            OpenLoopArrivals(5.0, 1.0, users_distribution="uniform")
        with pytest.raises(ValueError):
            OpenLoopArrivals(0.0, 1.0)
        with pytest.raises(ValueError, match="n_jobs"):
            OpenLoopArrivals(5.0, 1.0).sample_times(0)


class TestClosedLoop:
    def test_throughput_law_when_think_dominates(self):
        # With think times far above runtimes the closed-loop law
        # U / (E[runtime] + think) pins the measured rate; heavy-tailed
        # runtimes only perturb it through the slowest user's span.
        model = LublinModel()
        loop = ClosedLoopArrivals(n_users=8, mean_think_s=1_000_000.0)
        driven = loop.drive(model, 4_000, seed=0)
        submit = driven.column("submit_time")
        measured = (submit.size - 1) / (submit[-1] - submit[0])
        mean_rt = float(driven.column("run_time").mean())
        assert measured == pytest.approx(loop.expected_rate(mean_rt), rel=0.25)

    def test_users_dealt_round_robin(self):
        loop = ClosedLoopArrivals(n_users=4, mean_think_s=100.0)
        driven = loop.drive(LublinModel(), 1_000, seed=1)
        users = driven.column("user_id")
        assert set(np.unique(users)) == {0, 1, 2, 3}
        assert np.all(driven.column("think_time") >= 0)

    def test_self_throttling(self):
        # Doubling the population doubles the offered rate.
        model = LublinModel()
        slow = ClosedLoopArrivals(n_users=4, mean_think_s=500_000.0)
        fast = ClosedLoopArrivals(n_users=8, mean_think_s=500_000.0)
        s = slow.drive(model, 3_000, seed=2).column("submit_time")
        f = fast.drive(model, 3_000, seed=2).column("submit_time")
        rate_s = (s.size - 1) / (s[-1] - s[0])
        rate_f = (f.size - 1) / (f[-1] - f[0])
        assert rate_f / rate_s == pytest.approx(2.0, rel=0.2)

    def test_deterministic_under_seed(self):
        loop = ClosedLoopArrivals(n_users=3, mean_think_s=50.0)
        a = loop.drive(LublinModel(), 500, seed=4)
        b = loop.drive(LublinModel(), 500, seed=4)
        np.testing.assert_array_equal(
            a.column("submit_time"), b.column("submit_time")
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="n_users"):
            ClosedLoopArrivals(n_users=0, mean_think_s=10.0)
        with pytest.raises(ValueError):
            ClosedLoopArrivals(n_users=2, mean_think_s=0.0)
