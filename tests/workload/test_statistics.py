"""Tests for repro.workload.statistics (the Table 1 variable extraction)."""

import math

import numpy as np
import pytest

from repro.workload import MachineInfo, Workload, compute_statistics
from repro.workload.fields import MISSING
from repro.workload.statistics import (
    cpu_load,
    cpu_work,
    interarrival_times,
    normalized_parallelism,
    runtime_load,
)


@pytest.fixture
def machine():
    return MachineInfo("m", 100, scheduler_flexibility=2, allocation_flexibility=3)


def make(machine, **cols):
    return Workload.from_arrays(machine=machine, **cols)


class TestRuntimeLoad:
    def test_full_machine_is_one(self, machine):
        # One job using the whole machine for the whole duration.
        w = make(machine, submit_time=[0.0], wait_time=[0.0], run_time=[100.0], used_procs=[100])
        assert runtime_load(w) == pytest.approx(1.0)

    def test_half_load(self, machine):
        w = make(
            machine,
            submit_time=[0.0, 0.0],
            wait_time=[0.0, 0.0],
            run_time=[100.0, 100.0],
            used_procs=[25, 25],
        )
        assert runtime_load(w) == pytest.approx(0.5)

    def test_missing_runtimes_nan(self, machine):
        w = make(machine, submit_time=[0.0], used_procs=[4])
        assert math.isnan(runtime_load(w))

    def test_zero_duration_nan(self, machine):
        w = make(machine, submit_time=[0.0], wait_time=[0.0], run_time=[0.0], used_procs=[4])
        assert math.isnan(runtime_load(w))


class TestCpuLoad:
    def test_uses_cpu_field(self, machine):
        w = make(
            machine,
            submit_time=[0.0],
            wait_time=[0.0],
            run_time=[100.0],
            used_procs=[100],
            avg_cpu_time=[50.0],
        )
        assert cpu_load(w) == pytest.approx(0.5)

    def test_missing_gives_nan(self, machine):
        w = make(machine, submit_time=[0.0], wait_time=[0.0], run_time=[100.0], used_procs=[100])
        assert math.isnan(cpu_load(w))


class TestInterarrival:
    def test_diffs_of_sorted_submits(self, machine):
        w = make(machine, submit_time=[10.0, 0.0, 30.0], run_time=[1.0, 1.0, 1.0])
        assert np.array_equal(interarrival_times(w), [10.0, 20.0])

    def test_start_fallback(self, machine):
        w = make(
            machine,
            submit_time=[MISSING, MISSING],
            wait_time=[0.0, 0.0],
            run_time=[1.0, 1.0],
        )
        # All submits missing: falls back to start times (also 0 here since
        # submit is the base) -- the result is empty-safe, not crashing.
        out = interarrival_times(w)
        assert out.size == 0  # starts are negative too (missing submit)

    def test_single_job_empty(self, machine):
        w = make(machine, submit_time=[5.0], run_time=[1.0])
        assert interarrival_times(w).size == 0


class TestCpuWork:
    def test_prefers_cpu_time(self, machine):
        w = make(
            machine,
            submit_time=[0.0],
            run_time=[100.0],
            used_procs=[4],
            avg_cpu_time=[50.0],
        )
        assert np.array_equal(cpu_work(w), [200.0])

    def test_falls_back_to_runtime(self, machine):
        """Paper rule 3 (NASA): work approximated by runtime x procs."""
        w = make(machine, submit_time=[0.0], run_time=[100.0], used_procs=[4])
        assert np.array_equal(cpu_work(w), [400.0])

    def test_drops_jobs_without_either(self, machine):
        w = make(machine, submit_time=[0.0, 1.0], run_time=[MISSING, 10.0], used_procs=[4, 2])
        assert np.array_equal(cpu_work(w), [20.0])


class TestNormalizedParallelism:
    def test_formula(self, machine):
        w = make(machine, submit_time=[0.0], run_time=[1.0], used_procs=[50])
        # 50 of 100 procs -> 64 of 128.
        assert np.array_equal(normalized_parallelism(w), [64.0])


class TestComputeStatistics:
    def test_machine_constants(self, machine, small_workload):
        s = compute_statistics(small_workload)
        assert s.machine_processors == 64
        assert s.scheduler_flexibility == 2
        assert s.allocation_flexibility == 3

    def test_rule1_substitutes_loads(self, machine):
        """If CPU load is missing, runtime load is used (and vice versa)."""
        w = make(
            machine,
            submit_time=[0.0, 50.0],
            wait_time=[0.0, 0.0],
            run_time=[100.0, 50.0],
            used_procs=[50, 20],
        )
        s = compute_statistics(w)
        assert not math.isnan(s.runtime_load)
        assert s.cpu_load == pytest.approx(s.runtime_load)

    def test_medians_and_intervals(self, machine):
        runs = np.arange(1.0, 102.0)  # 1..101
        w = make(
            machine,
            submit_time=np.arange(101.0),
            run_time=runs,
            used_procs=np.full(101, 10),
        )
        s = compute_statistics(w)
        assert s.runtime_median == pytest.approx(51.0)
        assert s.runtime_interval == pytest.approx(90.0)
        assert s.procs_median == 10.0
        assert s.procs_interval == 0.0

    def test_coverage_50(self, machine):
        runs = np.arange(1.0, 102.0)
        w = make(
            machine,
            submit_time=np.arange(101.0),
            run_time=runs,
            used_procs=np.full(101, 10),
        )
        s = compute_statistics(w, coverage=0.5)
        assert s.runtime_interval == pytest.approx(50.0)

    def test_pct_completed(self, machine):
        w = make(
            machine,
            submit_time=[0.0, 1.0, 2.0, 3.0],
            run_time=[1.0] * 4,
            used_procs=[1] * 4,
            status=[1, 1, 0, 5],
        )
        assert compute_statistics(w).pct_completed == pytest.approx(0.5)

    def test_pct_completed_all_missing(self, machine):
        w = make(
            machine,
            submit_time=[0.0],
            run_time=[1.0],
            used_procs=[1],
            status=[MISSING],
        )
        assert math.isnan(compute_statistics(w).pct_completed)

    def test_norm_users(self, machine):
        w = make(
            machine,
            submit_time=np.arange(10.0),
            run_time=np.ones(10),
            used_procs=np.ones(10, dtype=int),
            user_id=[0, 0, 1, 1, 1, 2, 2, 2, 2, 2],
        )
        assert compute_statistics(w).norm_users == pytest.approx(0.3)

    def test_by_sign_keys(self, small_workload):
        signs = compute_statistics(small_workload).by_sign()
        assert set(signs) == {
            "MP", "SF", "AL", "RL", "CL", "E", "U", "C",
            "Rm", "Ri", "Pm", "Pi", "Nm", "Ni", "Cm", "Ci", "Im", "Ii",
        }

    def test_empty_workload_all_nan(self, machine):
        w = Workload.from_jobs([], machine)
        s = compute_statistics(w)
        assert math.isnan(s.runtime_median)
        assert math.isnan(s.interarrival_median)
