"""Tests for repro.workload.workload (MachineInfo + Workload)."""

import numpy as np
import pytest

from repro.workload import Job, MachineInfo, Workload
from repro.workload.fields import FIELD_NAMES, MISSING


class TestMachineInfo:
    def test_basic(self):
        m = MachineInfo("m", 128, scheduler_flexibility=2, allocation_flexibility=1)
        assert m.processors == 128

    def test_rejects_zero_processors(self):
        with pytest.raises(ValueError, match="processors"):
            MachineInfo("m", 0)

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError, match="scheduler_flexibility"):
            MachineInfo("m", 4, scheduler_flexibility=4)

    def test_missing_ranks_allowed(self):
        m = MachineInfo("m", 4)
        assert m.scheduler_flexibility == MISSING


class TestConstruction:
    def test_from_arrays_defaults(self, small_machine):
        w = Workload.from_arrays(
            machine=small_machine, submit_time=[0.0, 1.0], run_time=[5.0, 6.0]
        )
        assert len(w) == 2
        assert np.array_equal(w.column("job_id"), [1, 2])
        assert np.all(w.column("used_procs") == MISSING)
        assert np.all(w.column("status") == 1)

    def test_from_arrays_rejects_unknown_column(self, small_machine):
        with pytest.raises(ValueError, match="unknown columns"):
            Workload.from_arrays(machine=small_machine, bogus=[1.0])

    def test_from_arrays_needs_a_column(self, small_machine):
        with pytest.raises(ValueError, match="at least one column"):
            Workload.from_arrays(machine=small_machine)

    def test_from_jobs_roundtrip(self, small_machine):
        jobs = [Job(job_id=1, submit_time=0.0, run_time=10.0, used_procs=4),
                Job(job_id=2, submit_time=5.0, run_time=20.0, used_procs=8)]
        w = Workload.from_jobs(jobs, small_machine)
        back = list(w.to_jobs())
        assert [j.run_time for j in back] == [10.0, 20.0]
        assert [j.used_procs for j in back] == [4, 8]

    def test_from_jobs_empty(self, small_machine):
        w = Workload.from_jobs([], small_machine)
        assert len(w) == 0

    def test_unequal_columns_rejected(self, small_machine):
        cols = {name: np.zeros(3) for name in FIELD_NAMES}
        cols["run_time"] = np.zeros(4)
        with pytest.raises(ValueError, match="unequal lengths"):
            Workload(cols, small_machine)

    def test_missing_column_rejected(self, small_machine):
        cols = {name: np.zeros(3) for name in FIELD_NAMES if name != "queue"}
        with pytest.raises(ValueError, match="missing column"):
            Workload(cols, small_machine)

    def test_2d_column_rejected(self, small_machine):
        cols = {name: np.zeros(3) for name in FIELD_NAMES}
        cols["run_time"] = np.zeros((3, 1))
        with pytest.raises(ValueError, match="1-D"):
            Workload(cols, small_machine)


class TestAccess:
    def test_columns_read_only(self, small_workload):
        col = small_workload.column("run_time")
        with pytest.raises(ValueError):
            col[0] = 99.0

    def test_attribute_access(self, small_workload):
        assert np.array_equal(small_workload.run_time, small_workload.column("run_time"))

    def test_unknown_column(self, small_workload):
        with pytest.raises(KeyError, match="no such column"):
            small_workload.column("nope")

    def test_unknown_attribute(self, small_workload):
        with pytest.raises(AttributeError):
            small_workload.nope

    def test_int_columns_are_ints(self, small_workload):
        assert small_workload.column("used_procs").dtype == np.int64

    def test_repr(self, small_workload):
        assert "small" in repr(small_workload)
        assert "500" in repr(small_workload)


class TestDerived:
    def test_start_times_add_wait(self, small_machine):
        w = Workload.from_arrays(
            machine=small_machine,
            submit_time=[0.0, 10.0],
            wait_time=[2.0, MISSING],
            run_time=[1.0, 1.0],
        )
        assert np.allclose(w.start_times, [2.0, 10.0])

    def test_end_times(self, small_machine):
        w = Workload.from_arrays(
            machine=small_machine,
            submit_time=[0.0],
            wait_time=[2.0],
            run_time=[5.0],
        )
        assert np.allclose(w.end_times, [7.0])

    def test_duration_spans_trailing_run(self, small_machine):
        w = Workload.from_arrays(
            machine=small_machine,
            submit_time=[0.0, 100.0],
            wait_time=[0.0, 0.0],
            run_time=[1.0, 50.0],
        )
        assert w.duration() == pytest.approx(150.0)

    def test_duration_empty(self, small_machine):
        w = Workload.from_jobs([], small_machine)
        assert w.duration() == 0.0


class TestTransforms:
    def test_filter_mask(self, small_workload):
        mask = small_workload.column("used_procs") >= 8
        sub = small_workload.filter(mask)
        assert len(sub) == int(mask.sum())
        assert np.all(sub.column("used_procs") >= 8)

    def test_filter_preserves_machine(self, small_workload):
        sub = small_workload.filter(np.arange(10))
        assert sub.machine is small_workload.machine

    def test_sorted_by_submit(self, small_machine):
        w = Workload.from_arrays(
            machine=small_machine, submit_time=[5.0, 1.0, 3.0], run_time=[1.0, 2.0, 3.0]
        )
        s = w.sorted_by_submit()
        assert np.array_equal(s.column("submit_time"), [1.0, 3.0, 5.0])
        assert np.array_equal(s.column("run_time"), [2.0, 3.0, 1.0])

    def test_with_name(self, small_workload):
        renamed = small_workload.with_name("other")
        assert renamed.name == "other"
        assert small_workload.name == "small"

    def test_with_machine(self, small_workload):
        new_machine = MachineInfo("big", 1024)
        moved = small_workload.with_machine(new_machine)
        assert moved.machine.processors == 1024

    def test_concat(self, small_workload):
        both = small_workload.concat(small_workload)
        assert len(both) == 2 * len(small_workload)

    def test_concat_size_mismatch(self, small_workload):
        other = small_workload.with_machine(MachineInfo("big", 1024))
        with pytest.raises(ValueError, match="different sizes"):
            small_workload.concat(other)


class TestJob:
    def test_cpu_work(self):
        assert Job(run_time=10.0, used_procs=4).cpu_work == 40.0

    def test_cpu_work_missing(self):
        assert Job(run_time=-1, used_procs=4).cpu_work == -1.0

    def test_end_time(self):
        j = Job(submit_time=5.0, wait_time=2.0, run_time=3.0)
        assert j.end_time == 10.0

    def test_end_time_missing_parts(self):
        assert Job(submit_time=5.0).end_time == 5.0

    def test_as_tuple_order(self):
        t = Job(job_id=7).as_tuple()
        assert t[0] == 7 and len(t) == 18
