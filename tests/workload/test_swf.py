"""Tests for the SWF reader/writer."""

import io

import numpy as np
import pytest

from repro.workload import (
    MachineInfo,
    Workload,
    parse_swf_text,
    read_swf,
    render_swf_text,
    write_swf,
)
from repro.workload.fields import MISSING, SWF_FIELDS

SAMPLE = """\
; Computer: Test SP2
; MaxProcs: 128
; Note: tiny sample
1 0 5 100 4 90.0 -1 4 120 -1 1 3 1 7 1 -1 -1 -1
2 60 0 200.5 8 -1 -1 8 -1 -1 0 4 1 8 1 -1 -1 -1
"""


class TestParse:
    def test_header_parsed(self):
        w = parse_swf_text(SAMPLE)
        assert w.machine.name == "Test SP2"
        assert w.machine.processors == 128
        assert w.machine.description == "tiny sample"

    def test_jobs_parsed(self):
        w = parse_swf_text(SAMPLE)
        assert len(w) == 2
        assert np.array_equal(w.column("used_procs"), [4, 8])
        assert w.column("run_time")[1] == pytest.approx(200.5)

    def test_missing_values_kept(self):
        w = parse_swf_text(SAMPLE)
        assert w.column("used_memory")[0] == MISSING

    def test_short_lines_padded(self):
        w = parse_swf_text("1 0 5 100 4\n")
        assert len(w) == 1
        assert w.column("status")[0] == MISSING

    def test_too_many_fields_rejected(self):
        line = " ".join(["1"] * 19)
        with pytest.raises(ValueError, match="19 fields"):
            parse_swf_text(line)

    def test_non_numeric_rejected(self):
        with pytest.raises(ValueError, match="non-numeric"):
            parse_swf_text("1 0 abc\n")

    def test_blank_lines_skipped(self):
        w = parse_swf_text("\n\n1 0 5 100 4\n\n")
        assert len(w) == 1

    def test_empty_log(self):
        w = parse_swf_text("; MaxProcs: 10\n")
        assert len(w) == 0
        assert w.machine.processors == 10

    def test_procs_inferred_without_header(self):
        w = parse_swf_text("1 0 0 10 32\n2 5 0 10 64\n")
        assert w.machine.processors == 64

    def test_explicit_machine_overrides(self):
        m = MachineInfo("forced", 999)
        w = parse_swf_text(SAMPLE, machine=m)
        assert w.machine.processors == 999

    def test_name_defaults_to_computer_header(self):
        w = parse_swf_text(SAMPLE)
        assert w.name == "Test SP2"

    def test_explicit_name(self):
        w = parse_swf_text(SAMPLE, name="mylog")
        assert w.name == "mylog"


class TestRoundTrip:
    def test_render_and_parse(self, small_workload):
        text = render_swf_text(small_workload)
        back = parse_swf_text(text)
        assert len(back) == len(small_workload)
        assert back.machine.processors == small_workload.machine.processors
        # Floats are rendered with 2 decimals; integers exactly.
        assert np.array_equal(back.column("used_procs"), small_workload.column("used_procs"))
        assert np.allclose(
            back.column("run_time"), np.round(small_workload.column("run_time"), 2)
        )

    def test_missing_survives_roundtrip(self, small_machine):
        w = Workload.from_arrays(machine=small_machine, submit_time=[0.0], run_time=[5.0])
        back = parse_swf_text(render_swf_text(w))
        assert back.column("used_procs")[0] == MISSING

    def test_headers_in_output(self, small_workload):
        text = render_swf_text(small_workload, headers={"Custom": "value"})
        assert "; Custom: value" in text
        assert f"; MaxJobs: {len(small_workload)}" in text

    def test_file_io(self, small_workload, tmp_path):
        path = tmp_path / "log.swf"
        write_swf(small_workload, path)
        back = read_swf(path)
        assert len(back) == len(small_workload)

    def test_stream_io(self, small_workload):
        buf = io.StringIO()
        write_swf(small_workload, buf)
        back = read_swf(io.StringIO(buf.getvalue()))
        assert len(back) == len(small_workload)

    def test_field_count_is_18(self, small_workload):
        line = render_swf_text(small_workload).splitlines()[-1]
        assert len(line.split()) == len(SWF_FIELDS) == 18


MALFORMED = """\
; MaxProcs: 128
1 0 5 100 4
2 0 abc
3 10 5 100 4
"""


class TestOnError:
    def test_default_policy_raises_with_line_number(self):
        with pytest.raises(ValueError, match="line 3"):
            parse_swf_text(MALFORMED)

    def test_skip_drops_bad_lines(self):
        w = parse_swf_text(MALFORMED, on_error="skip")
        assert len(w) == 2
        assert np.array_equal(w.column("job_id"), [1, 3])
        assert not hasattr(w, "parse_errors")

    def test_quarantine_records_errors_on_workload(self):
        w = parse_swf_text(MALFORMED, on_error="quarantine")
        assert len(w) == 2
        assert len(w.parse_errors) == 1
        err = w.parse_errors[0]
        assert err.lineno == 3
        assert "non-numeric" in err.reason
        assert err.line == "2 0 abc"

    def test_quarantine_flags_too_many_fields(self):
        text = " ".join(["9"] * 19) + "\n1 0 5 100 4\n"
        w = parse_swf_text(text, on_error="quarantine")
        assert len(w) == 1
        assert "19 fields" in w.parse_errors[0].reason

    def test_quarantined_errors_reach_the_audit(self):
        from repro.workload.anomalies import audit_workload

        w = parse_swf_text(MALFORMED, on_error="quarantine")
        report = audit_workload(w)
        assert report.parse_errors == w.parse_errors
        assert not report.is_clean
        assert "1 unparsable line(s)" in report.summary()

    def test_clean_parse_keeps_audit_clean_of_parse_errors(self):
        from repro.workload.anomalies import audit_workload

        w = parse_swf_text(SAMPLE, on_error="quarantine")
        assert w.parse_errors == ()
        assert audit_workload(w).parse_errors == ()

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            parse_swf_text(SAMPLE, on_error="ignore")

    def test_read_swf_threads_policy(self, tmp_path):
        path = tmp_path / "log.swf"
        path.write_text(MALFORMED)
        w = read_swf(path, on_error="skip")
        assert len(w) == 2
        with pytest.raises(ValueError, match="line 3"):
            read_swf(path)
