"""Fast SWF scan ≡ reference scan: columns, errors and line numbers.

The bulk loadtxt path must be invisible: every input either parses to
bit-identical columns or falls back to the per-line reference scan, so
``on_error`` semantics, ``SwfParseError`` line numbers and short-record
padding are preserved exactly.  These tests drive both scanners over
clean, malformed and adversarial inputs and demand equality — plus a
guarantee that the fast path actually engages on clean logs (otherwise
the benchmark claim is hollow).
"""

import gzip

import numpy as np
import pytest

from repro.workload.fields import MISSING, SWF_FIELDS
from repro.workload.swf import (
    _scan_bytes,
    _scan_fast,
    parse_swf_text,
    parse_swf_text_reference,
    read_swf,
    read_swf_reference,
    render_swf_text,
    render_swf_text_reference,
    write_swf,
)

CLEAN = """\
; Computer: Test SP2
; MaxProcs: 128
; Note: tiny sample
1 0 5 100 4 90.5 -1 4 120 -1 1 3 1 7 1 -1 -1 -1
2 60 0 200 8 -1 -1 8 -1 -1 0 4 1 8 1 -1 -1 -1
3 90 12 50 2 33.25 -1 2 60 -1 1 5 2 7 0 -1 -1 -1
"""

MALFORMED = """\
; MaxProcs: 128
1 0 5 100 4
2 0 abc
3 10 5 100 4
"""


def _assert_same_workload(a, b):
    assert len(a) == len(b)
    for f in SWF_FIELDS:
        ca, cb = a.column(f.name), b.column(f.name)
        assert ca.dtype == cb.dtype, f.name
        equal_nan = ca.dtype.kind == "f"
        assert np.array_equal(ca, cb, equal_nan=equal_nan), f.name
    assert a.machine.name == b.machine.name
    assert a.machine.processors == b.machine.processors
    assert a.name == b.name
    assert getattr(a, "parse_errors", ()) == getattr(b, "parse_errors", ())


def _assert_equivalent(text, **kwargs):
    got = parse_swf_text(text, **kwargs)
    want = parse_swf_text_reference(text, **kwargs)
    _assert_same_workload(got, want)
    return got


class TestFastPathEngages:
    def test_clean_text_takes_fast_scan(self):
        assert _scan_fast(CLEAN) is not None

    def test_clean_bytes_take_bytes_scan(self):
        assert _scan_bytes(CLEAN.encode()) is not None

    def test_decimals_outside_avg_cpu_still_bulk_parse(self):
        # run_time "200.5" defeats the integer dtype but not the float matrix.
        text = CLEAN.replace("2 60 0 200 8", "2 60 0 200.5 8")
        assert _scan_fast(text) is not None
        _assert_equivalent(text)


class TestCleanEquivalence:
    def test_clean_sample(self):
        _assert_equivalent(CLEAN)

    def test_headers_only(self):
        _assert_equivalent("; Computer: X\n; MaxProcs: 4\n")

    def test_empty_text(self):
        _assert_equivalent("")

    def test_blank_lines_between_jobs(self):
        text = CLEAN.replace(
            "2 60 0 200 8", "\n   \n2 60 0 200 8"
        )
        _assert_equivalent(text)

    def test_crlf_line_endings(self):
        _assert_equivalent(CLEAN.replace("\n", "\r\n"))

    def test_no_trailing_newline(self):
        _assert_equivalent(CLEAN.rstrip("\n"))

    def test_uniform_short_records_padded(self):
        text = "; MaxProcs: 8\n1 0 5 100 4\n2 10 6 90 2\n"
        w = _assert_equivalent(text)
        assert w.column("status")[0] == MISSING

    def test_tabs_and_extra_spaces(self):
        _assert_equivalent(CLEAN.replace(" ", "\t", 3).replace("4 90.5", "4   90.5"))

    def test_huge_integers_fall_back_to_float_rounding(self):
        # 2**53 + 1 is not representable in float64; the reference rounds
        # it through float, so the fast path must reproduce that rounding.
        big = str(2**53 + 1)
        text = f"; MaxProcs: 4\n1 {big} 5 100 4 -1 -1 4 120 -1 1 3 1 7 1 -1 -1 -1\n"
        w = _assert_equivalent(text)
        assert w.column("submit_time")[0] == float(2**53 + 1)


class TestFallbackEquivalence:
    @pytest.mark.parametrize("policy", ["skip", "quarantine"])
    def test_malformed_matches_reference(self, policy):
        w = _assert_equivalent(MALFORMED, on_error=policy)
        if policy == "quarantine":
            assert [e.lineno for e in w.parse_errors] == [3]

    def test_raise_message_identical(self):
        with pytest.raises(ValueError) as fast_exc:
            parse_swf_text(MALFORMED)
        with pytest.raises(ValueError) as ref_exc:
            parse_swf_text_reference(MALFORMED)
        assert str(fast_exc.value) == str(ref_exc.value)

    def test_too_many_fields_line_numbers(self):
        text = CLEAN + "4 0 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17\n"
        w = _assert_equivalent(text, on_error="quarantine")
        assert [e.lineno for e in w.parse_errors] == [7]

    def test_mid_file_comment_falls_back(self):
        text = CLEAN.replace("3 90 12", "; a comment mid-file\n3 90 12")
        assert _scan_fast(text) is None
        _assert_equivalent(text)

    @pytest.mark.parametrize("sep", ["\v", "\f", "\x85", " ", " ", "\r"])
    def test_exotic_line_breaks_fall_back(self, sep):
        # splitlines treats these as line breaks; loadtxt would treat most
        # of them as field separators, so the fast scan must decline.
        text = f"; MaxProcs: 8\n1 0 5 100 4{sep}2 10 6 90 2\n"
        assert _scan_fast(text) is None
        _assert_equivalent(text, on_error="quarantine")

    def test_exotic_break_in_header_falls_back(self):
        text = "; Note: a b\n1 0 5 100 4 -1 -1 4 120 -1 1 3 1 7 1 -1 -1 -1\n"
        assert _scan_fast(text) is None
        assert _scan_bytes(text.encode()) is None
        _assert_equivalent(text, on_error="quarantine")

    @pytest.mark.parametrize(
        "token", ["1_0", "0x1A", "nan", "inf", "-inf", "+5", "1e3"]
    )
    def test_odd_numeric_tokens_match(self, token):
        text = f"; MaxProcs: 8\n1 {token} 5 100 4 -1 -1 4 120 -1 1 3 1 7 1 -1 -1 -1\n"
        _assert_equivalent(text, on_error="quarantine")


class TestFileIngest:
    def _roundtrip(self, tmp_path, text, name="log.swf"):
        path = tmp_path / name
        path.write_bytes(text.encode() if isinstance(text, str) else text)
        got = read_swf(str(path))
        want = read_swf_reference(str(path))
        _assert_same_workload(got, want)
        _assert_same_workload(got, parse_swf_text(text))
        return got

    def test_bytes_ingest_matches_text_parse(self, tmp_path):
        self._roundtrip(tmp_path, CLEAN)

    def test_gzip_ingest(self, tmp_path):
        path = tmp_path / "log.swf.gz"
        path.write_bytes(gzip.compress(CLEAN.encode()))
        _assert_same_workload(read_swf(str(path)), parse_swf_text(CLEAN))

    def test_malformed_file_quarantine(self, tmp_path):
        path = tmp_path / "bad.swf"
        path.write_text(MALFORMED)
        got = read_swf(str(path), on_error="quarantine")
        want = read_swf_reference(str(path), on_error="quarantine")
        _assert_same_workload(got, want)
        assert [e.lineno for e in got.parse_errors] == [3]

    def test_bom_falls_back_but_matches(self, tmp_path):
        # A BOM makes line 1 unparseable for the reference scan too; the
        # bytes path must decline so both report the identical error.
        raw = b"\xef\xbb\xbf" + CLEAN.encode()
        assert _scan_bytes(raw) is None
        path = tmp_path / "bom.swf"
        path.write_bytes(raw)
        got = read_swf(str(path), on_error="quarantine")
        want = read_swf_reference(str(path), on_error="quarantine")
        _assert_same_workload(got, want)
        assert got.parse_errors[0].lineno == 1


class TestRenderEquivalence:
    def _workload(self, text=CLEAN):
        return parse_swf_text(text)

    def test_render_byte_identical(self):
        w = self._workload()
        assert render_swf_text(w) == render_swf_text_reference(w)

    def test_render_parse_roundtrip(self):
        w = self._workload()
        again = parse_swf_text(render_swf_text(w))
        _assert_same_workload(w, again)

    def test_huge_values_fall_back_but_match(self):
        # 5e18 exceeds the fast renderer's integer-printf range, forcing
        # the scalar fallback; output must still match the reference.
        text = "; MaxProcs: 8\n1 5e18 5 100 4 -1 -1 4 120 -1 1 3 1 7 1 -1 -1 -1\n"
        w = parse_swf_text(text, on_error="quarantine")
        assert render_swf_text(w) == render_swf_text_reference(w)

    def test_nonfinite_values_raise_in_both_renderers(self):
        text = "; MaxProcs: 8\n1 inf 5 100 4 nan -1 4 120 -1 1 3 1 7 1 -1 -1 -1\n"
        w = parse_swf_text(text, on_error="quarantine")
        with pytest.raises((OverflowError, ValueError)):
            render_swf_text_reference(w)
        with pytest.raises((OverflowError, ValueError)):
            render_swf_text(w)

    def test_write_swf_uses_fast_render(self, tmp_path, small_workload=None):
        w = self._workload()
        path = tmp_path / "out.swf"
        write_swf(w, str(path))
        again = read_swf(str(path))
        _assert_same_workload(w, again)
