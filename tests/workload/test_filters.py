"""Tests for repro.workload.filters."""

import numpy as np
import pytest

from repro.workload import (
    Workload,
    filter_jobs,
    restrict_to_window,
    split_interactive_batch,
    split_time_windows,
)


class TestFilterJobs:
    def test_predicate_applied(self, small_workload):
        out = filter_jobs(small_workload, lambda w: w.column("used_procs") > 8)
        assert np.all(out.column("used_procs") > 8)

    def test_bad_mask_shape_rejected(self, small_workload):
        with pytest.raises(ValueError, match="shape"):
            filter_jobs(small_workload, lambda w: np.ones(3, dtype=bool))

    def test_renaming(self, small_workload):
        out = filter_jobs(small_workload, lambda w: w.column("status") == 1, name="done")
        assert out.name == "done"


class TestInteractiveBatchSplit:
    def test_by_queue(self, small_workload):
        inter, batch = split_interactive_batch(small_workload, interactive_queues=[1])
        assert len(inter) + len(batch) == len(small_workload)
        assert np.all(inter.column("queue") == 1)
        assert np.all(batch.column("queue") != 1)

    def test_by_runtime(self, small_workload):
        inter, batch = split_interactive_batch(small_workload, runtime_threshold=60.0)
        assert np.all(inter.column("run_time") <= 60.0)
        assert np.all(batch.column("run_time") > 60.0)

    def test_naming_convention(self, small_workload):
        inter, batch = split_interactive_batch(small_workload, interactive_queues=[1])
        assert inter.name == "small-inter"
        assert batch.name == "small-batch"

    def test_exactly_one_criterion(self, small_workload):
        with pytest.raises(ValueError, match="exactly one"):
            split_interactive_batch(small_workload)
        with pytest.raises(ValueError, match="exactly one"):
            split_interactive_batch(
                small_workload, interactive_queues=[1], runtime_threshold=60.0
            )


class TestWindow:
    def test_restrict(self, small_machine):
        w = Workload.from_arrays(
            machine=small_machine,
            submit_time=np.arange(10.0),
            run_time=np.ones(10),
        )
        sub = restrict_to_window(w, 2.0, 5.0)
        assert np.array_equal(sub.column("submit_time"), [2.0, 3.0, 4.0])

    def test_restrict_bad_bounds(self, small_workload):
        with pytest.raises(ValueError, match="end must exceed"):
            restrict_to_window(small_workload, 5.0, 5.0)


class TestSplitTimeWindows:
    def test_partition_complete(self, small_workload):
        parts = split_time_windows(small_workload, 4)
        assert sum(len(p) for p in parts) == len(small_workload)

    def test_windows_disjoint_in_time(self, small_workload):
        parts = split_time_windows(small_workload, 3)
        maxes = [p.column("submit_time").max() for p in parts if len(p)]
        mins = [p.column("submit_time").min() for p in parts if len(p)]
        for i in range(len(maxes) - 1):
            assert maxes[i] <= mins[i + 1]

    def test_labels(self, small_workload):
        parts = split_time_windows(small_workload, 2)
        assert parts[0].name == "small-1"
        assert parts[1].name == "small-2"

    def test_custom_label_format(self, small_workload):
        parts = split_time_windows(small_workload, 2, label_fmt="{name}/P{i}")
        assert parts[0].name == "small/P1"

    def test_fixed_window_seconds_drops_overflow(self, small_machine):
        w = Workload.from_arrays(
            machine=small_machine,
            submit_time=np.arange(0.0, 100.0, 10.0),
            run_time=np.ones(10),
        )
        parts = split_time_windows(w, 2, window_seconds=20.0)
        # Two windows of 20s starting at 0: jobs at 0,10 and 20,30.
        assert [len(p) for p in parts] == [2, 2]

    def test_single_window_keeps_all(self, small_workload):
        parts = split_time_windows(small_workload, 1)
        assert len(parts) == 1 and len(parts[0]) == len(small_workload)

    def test_empty_workload_rejected(self, small_machine):
        empty = Workload.from_jobs([], small_machine)
        with pytest.raises(ValueError, match="empty"):
            split_time_windows(empty, 2)

    def test_bad_counts(self, small_workload):
        with pytest.raises(ValueError):
            split_time_windows(small_workload, 0)
        with pytest.raises(ValueError, match="window_seconds"):
            split_time_windows(small_workload, 2, window_seconds=0.0)
