"""Tests for the workload-analysis CLI (python -m repro.workload)."""

import pytest

from repro.workload.__main__ import main


class TestWorkloadCli:
    def test_archive_name(self, capsys):
        assert main(["KTH", "--jobs", "3000", "--no-homogeneity", "--no-selfsim"]) == 0
        out = capsys.readouterr().out
        assert "KTH" in out and "Rm" in out and "Ii" in out

    def test_swf_file(self, small_workload, tmp_path, capsys):
        from repro.workload import write_swf

        path = tmp_path / "trace.swf"
        write_swf(small_workload, path)
        assert main([str(path), "--no-homogeneity", "--no-selfsim"]) == 0
        assert "500 jobs" in capsys.readouterr().out

    def test_homogeneity_section(self, capsys):
        assert main(["SDSC", "--jobs", "4000", "--windows", "3", "--no-selfsim"]) == 0
        out = capsys.readouterr().out
        assert "Homogeneity audit" in out
        assert "SDSC-P1" in out and "SDSC-P3" in out

    def test_selfsim_section(self, capsys):
        assert main(["LANLi", "--jobs", "4000", "--no-homogeneity"]) == 0
        out = capsys.readouterr().out
        assert "Self-similarity audit" in out
        assert "interarrival" in out

    def test_missing_file_errors(self):
        with pytest.raises(FileNotFoundError):
            main(["/nonexistent/trace.swf"])
