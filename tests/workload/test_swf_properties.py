"""Property-based SWF round-trip tests with hypothesis-generated workloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import MachineInfo, Workload, parse_swf_text, render_swf_text
from repro.workload.fields import FIELD_NAMES, MISSING


@st.composite
def workloads(draw):
    """Random small workloads with a mix of known and missing fields."""
    n = draw(st.integers(min_value=1, max_value=30))
    procs = draw(st.integers(min_value=2, max_value=512))
    machine = MachineInfo("hyp", procs)
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**31)))
    submit = np.round(np.sort(rng.uniform(0, 1e6, n)), 2)
    run = np.round(rng.uniform(0, 1e5, n), 2)
    sizes = rng.integers(1, procs + 1, n)
    # Randomly knock out some fields to the missing sentinel.
    if draw(st.booleans()):
        run[rng.random(n) < 0.3] = MISSING
    return Workload.from_arrays(
        machine=machine,
        submit_time=submit,
        run_time=run,
        used_procs=sizes,
        user_id=rng.integers(0, 20, n),
        status=rng.choice([0, 1, 5], n),
    )


class TestSwfRoundTripProperties:
    @given(workloads())
    @settings(max_examples=30)
    def test_roundtrip_preserves_everything(self, workload):
        back = parse_swf_text(render_swf_text(workload))
        assert len(back) == len(workload)
        assert back.machine.processors == workload.machine.processors
        for name in FIELD_NAMES:
            original = workload.column(name)
            restored = back.column(name)
            # Floats render at 2 decimals; ints exactly.
            assert np.allclose(restored, np.round(original.astype(float), 2)), name

    @given(workloads())
    @settings(max_examples=30)
    def test_double_roundtrip_is_identity(self, workload):
        once = render_swf_text(workload)
        twice = render_swf_text(parse_swf_text(once))
        assert once.splitlines()[3:] == twice.splitlines()[3:]  # job lines equal

    @given(workloads())
    @settings(max_examples=20)
    def test_statistics_survive_roundtrip(self, workload):
        from repro.workload import compute_statistics

        a = compute_statistics(workload)
        b = compute_statistics(parse_swf_text(render_swf_text(workload)))
        for attr in ("procs_median", "procs_interval"):
            va, vb = getattr(a, attr), getattr(b, attr)
            if np.isnan(va):
                assert np.isnan(vb)
            else:
                assert vb == pytest.approx(va, abs=0.01)
