"""Fault-injection tests for the log-anomaly detectors.

Each test plants one of the Section 1 failure modes into an otherwise
clean synthesized log and checks that exactly that detector fires.
"""

import numpy as np
import pytest

from repro.workload import (
    Workload,
    audit_workload,
    drop_limit_violations,
    find_dedication_periods,
    find_downtime_gaps,
    find_duplicate_records,
    find_limit_violations,
)
from repro.workload.fields import FIELD_NAMES


@pytest.fixture(scope="module")
def clean_log():
    """A Lublin stream: no load-calibrated gap inflation, so every
    detector has a genuinely clean baseline.  (Synthesized archive logs
    deliberately carry huge idle gaps — that is how they hit the published
    loads — and correctly trip the downtime detector.)"""
    from repro.models import LublinModel

    return LublinModel(median_interarrival=420.0, n_users=48).generate(4000, seed=21)


def with_columns(workload, **overrides):
    cols = {name: np.array(workload.column(name)) for name in FIELD_NAMES}
    for name, value in overrides.items():
        cols[name] = value
    return Workload(cols, workload.machine, workload.name)


class TestCleanBaseline:
    def test_model_stream_audits_clean(self, clean_log):
        report = audit_workload(clean_log)
        assert report.limits.total == 0
        assert report.duplicates.size == 0
        assert not report.dedication
        assert report.summary().startswith("Lublin")


class TestLimitViolations:
    def test_runtime_over_limit_detected(self, clean_log):
        run = np.array(clean_log.column("run_time"))
        run[7] = clean_log.duration() * 10  # impossible: longer than the log
        broken = with_columns(clean_log, run_time=run)
        v = find_limit_violations(broken)
        assert 7 in v.runtime_over_limit

    def test_explicit_limit(self, clean_log):
        v = find_limit_violations(clean_log, runtime_limit=1.0)
        assert v.runtime_over_limit.size > 3000  # nearly everything flagged

    def test_size_over_machine_detected(self, clean_log):
        procs = np.array(clean_log.column("used_procs"))
        procs[3] = clean_log.machine.processors * 2
        broken = with_columns(clean_log, used_procs=procs)
        v = find_limit_violations(broken)
        assert np.array_equal(v.size_over_machine, [3])

    def test_negative_duration_detected(self, clean_log):
        run = np.array(clean_log.column("run_time"))
        run[11] = -50.0  # not the -1 "unknown" sentinel: corrupt
        broken = with_columns(clean_log, run_time=run)
        v = find_limit_violations(broken)
        assert np.array_equal(v.negative_duration, [11])

    def test_unknown_sentinel_not_flagged(self, clean_log):
        run = np.array(clean_log.column("run_time"))
        run[5] = -1.0
        broken = with_columns(clean_log, run_time=run)
        assert find_limit_violations(broken).negative_duration.size == 0

    def test_drop_removes_only_bad(self, clean_log):
        run = np.array(clean_log.column("run_time"))
        run[7] = clean_log.duration() * 10
        broken = with_columns(clean_log, run_time=run)
        cleaned, removed = drop_limit_violations(broken)
        assert removed == 1
        assert len(cleaned) == len(broken) - 1

    def test_drop_noop_on_clean(self, clean_log):
        cleaned, removed = drop_limit_violations(clean_log)
        assert removed == 0
        assert len(cleaned) == len(clean_log)


class TestDowntime:
    def test_planted_gap_detected(self, clean_log):
        submit = np.array(clean_log.column("submit_time"))
        # Insert two weeks of silence halfway through.
        half = len(submit) // 2
        submit[half:] += 14 * 24 * 3600.0
        broken = with_columns(clean_log, submit_time=submit)
        gaps = find_downtime_gaps(broken)
        assert len(gaps) == 1
        assert gaps[0].duration >= 14 * 24 * 3600.0

    def test_heavy_tailed_archive_logs_do_trip_the_detector(self):
        """The synthesized archive logs hit their published loads through
        inflated idle tails — indistinguishable from downtime, and the
        detector says so.  (The paper's point exactly: such gaps in real
        logs are ambiguous between idle spells and undocumented outages.)"""
        from repro.archive import synthesize_workload

        kth = synthesize_workload("KTH", n_jobs=4000, seed=21)
        assert len(find_downtime_gaps(kth)) > 0

    def test_clean_log_has_no_gaps(self, clean_log):
        assert find_downtime_gaps(clean_log) == []

    def test_tiny_log_no_crash(self, clean_log):
        small = clean_log.filter(np.arange(5))
        assert find_downtime_gaps(small) == []


class TestDedication:
    def test_planted_dedication_detected(self, clean_log):
        users = np.array(clean_log.column("user_id"))
        submit = clean_log.column("submit_time")
        # Dedicate the first week to user 999.
        week = submit < submit.min() + 7 * 24 * 3600.0
        users[week] = 999
        broken = with_columns(clean_log, user_id=users)
        periods = find_dedication_periods(broken)
        assert periods
        assert periods[0].user_id == 999
        assert periods[0].share > 0.9

    def test_clean_log_not_dedicated(self, clean_log):
        assert find_dedication_periods(clean_log) == []

    def test_threshold_respected(self, clean_log):
        # With a 0-threshold, someone always "dominates" each window.
        periods = find_dedication_periods(clean_log, share_threshold=0.0)
        assert periods


class TestDuplicates:
    def test_planted_duplicate_detected(self, clean_log):
        cols = {name: np.array(clean_log.column(name)) for name in FIELD_NAMES}
        for name in cols:
            cols[name] = np.concatenate([cols[name], cols[name][100:101]])
        broken = Workload(cols, clean_log.machine, clean_log.name)
        dupes = find_duplicate_records(broken)
        assert dupes.size == 1
        assert dupes[0] == len(clean_log)

    def test_clean_log_no_duplicates(self, clean_log):
        assert find_duplicate_records(clean_log).size == 0


class TestAuditBundle:
    def test_dirty_log_fails_audit(self, clean_log):
        run = np.array(clean_log.column("run_time"))
        run[7] = clean_log.duration() * 10
        broken = with_columns(clean_log, run_time=run)
        report = audit_workload(broken)
        assert not report.is_clean
        assert "1 limit violation" in report.summary()

    def test_clean_flag(self, clean_log):
        assert audit_workload(clean_log).is_clean
