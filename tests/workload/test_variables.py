"""Tests for the variable registry and matrix assembly."""

import math

import numpy as np
import pytest

from repro.workload import compute_statistics
from repro.workload.variables import (
    MODEL_COMPARABLE_SIGNS,
    VARIABLES,
    observation_matrix,
    observation_vector,
    variable,
)


class TestRegistry:
    def test_all_18_variables(self):
        assert len(VARIABLES) == 18

    def test_signs_match_paper(self):
        assert set(VARIABLES) == {
            "MP", "SF", "AL", "RL", "CL", "E", "U", "C",
            "Rm", "Ri", "Pm", "Pi", "Nm", "Ni", "Cm", "Ci", "Im", "Ii",
        }

    def test_lookup(self):
        assert variable("Rm").name == "runtime_median"

    def test_unknown_sign(self):
        with pytest.raises(KeyError, match="unknown variable"):
            variable("ZZ")

    def test_model_comparable_set(self):
        assert len(MODEL_COMPARABLE_SIGNS) == 8
        assert "RL" not in MODEL_COMPARABLE_SIGNS


class TestObservationVector:
    def test_from_statistics(self, small_workload):
        stats = compute_statistics(small_workload)
        vec = observation_vector(stats, ["Rm", "Pm"])
        assert vec[0] == stats.runtime_median
        assert vec[1] == stats.procs_median

    def test_from_mapping_by_sign(self):
        vec = observation_vector({"Rm": 5.0, "Pm": 2.0}, ["Rm", "Pm"])
        assert np.array_equal(vec, [5.0, 2.0])

    def test_from_mapping_by_full_name(self):
        vec = observation_vector({"runtime_median": 5.0}, ["Rm"])
        assert vec[0] == 5.0

    def test_none_becomes_nan(self):
        vec = observation_vector({"Rm": None}, ["Rm"])
        assert math.isnan(vec[0])

    def test_absent_becomes_nan(self):
        vec = observation_vector({}, ["Rm"])
        assert math.isnan(vec[0])

    def test_invalid_sign_rejected(self):
        with pytest.raises(KeyError):
            observation_vector({"Rm": 1.0}, ["XX"])


class TestObservationMatrix:
    def test_shape_and_labels(self):
        rows = [{"name": "a", "Rm": 1.0}, {"name": "b", "Rm": 2.0}]
        mat, labels = observation_matrix(rows, ["Rm"])
        assert mat.shape == (2, 1)
        assert labels == ["a", "b"]

    def test_default_labels(self):
        mat, labels = observation_matrix([{"Rm": 1.0}], ["Rm"])
        assert labels == ["obs0"]

    def test_statistics_labels(self, small_workload):
        stats = compute_statistics(small_workload)
        _, labels = observation_matrix([stats], ["Rm"])
        assert labels == ["small"]

    def test_explicit_labels(self):
        _, labels = observation_matrix([{"Rm": 1.0}], ["Rm"], labels=["X"])
        assert labels == ["X"]

    def test_label_count_mismatch(self):
        with pytest.raises(ValueError, match="labels"):
            observation_matrix([{"Rm": 1.0}], ["Rm"], labels=["a", "b"])

    def test_empty_observations(self):
        mat, labels = observation_matrix([], ["Rm", "Pm"])
        assert mat.shape == (0, 2)
        assert labels == []
