"""Tests for workload-to-series derivation."""

import numpy as np
import pytest

from repro.selfsim import SERIES_ATTRIBUTES, binned_counts, workload_series
from repro.workload import MachineInfo, Workload
from repro.workload.fields import MISSING


@pytest.fixture
def machine():
    return MachineInfo("m", 16)


class TestWorkloadSeries:
    def test_attributes_registry(self):
        assert SERIES_ATTRIBUTES == ("used_procs", "run_time", "cpu_time", "interarrival")

    def test_arrival_order(self, machine):
        w = Workload.from_arrays(
            machine=machine,
            submit_time=[20.0, 0.0, 10.0],
            run_time=[3.0, 1.0, 2.0],
            used_procs=[8, 2, 4],
        )
        assert np.array_equal(workload_series(w, "run_time"), [1.0, 2.0, 3.0])
        assert np.array_equal(workload_series(w, "used_procs"), [2.0, 4.0, 8.0])

    def test_cpu_time_prefers_measured(self, machine):
        w = Workload.from_arrays(
            machine=machine,
            submit_time=[0.0, 1.0],
            run_time=[10.0, 10.0],
            used_procs=[2, 2],
            avg_cpu_time=[4.0, MISSING],
        )
        # First job: measured 4*2; second: fallback 10*2.
        assert np.array_equal(workload_series(w, "cpu_time"), [8.0, 20.0])

    def test_interarrival(self, machine):
        w = Workload.from_arrays(
            machine=machine, submit_time=[0.0, 5.0, 15.0], run_time=[1.0] * 3,
            used_procs=[1] * 3,
        )
        assert np.array_equal(workload_series(w, "interarrival"), [5.0, 10.0])

    def test_missing_values_dropped(self, machine):
        w = Workload.from_arrays(
            machine=machine,
            submit_time=[0.0, 1.0, 2.0],
            run_time=[5.0, MISSING, 7.0],
            used_procs=[1, 1, 1],
        )
        assert np.array_equal(workload_series(w, "run_time"), [5.0, 7.0])

    def test_unknown_attribute(self, machine, small_workload):
        with pytest.raises(ValueError, match="unknown attribute"):
            workload_series(small_workload, "wait")

    def test_series_on_real_synth(self, synthesized_ctc):
        for attr in SERIES_ATTRIBUTES:
            series = workload_series(synthesized_ctc, attr)
            assert series.size > 5000
            assert np.all(series >= 0)


class TestBinnedCounts:
    def test_counts(self, machine):
        w = Workload.from_arrays(
            machine=machine,
            submit_time=[0.0, 1.0, 2.5, 9.9],
            run_time=[1.0] * 4,
            used_procs=[1] * 4,
        )
        counts = binned_counts(w, 5.0)
        assert np.array_equal(counts, [3.0, 1.0])

    def test_total_preserved(self, small_workload):
        counts = binned_counts(small_workload, 120.0)
        assert counts.sum() == len(small_workload)

    def test_empty(self, machine):
        w = Workload.from_jobs([], machine)
        assert binned_counts(w, 10.0).size == 0

    def test_validation(self, small_workload):
        with pytest.raises(ValueError):
            binned_counts(small_workload, 0.0)
