"""Tests for the fractional Gaussian noise generator."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.selfsim import fbm, fgn, fgn_autocovariance


class TestAutocovariance:
    def test_white_noise_case(self):
        gamma = fgn_autocovariance(0.5, 5)
        assert gamma[0] == pytest.approx(1.0)
        assert np.allclose(gamma[1:], 0.0, atol=1e-12)

    def test_variance_is_sigma_squared(self):
        assert fgn_autocovariance(0.7, 3, sigma=2.0)[0] == pytest.approx(4.0)

    def test_persistent_positive_covariance(self):
        gamma = fgn_autocovariance(0.8, 10)
        assert np.all(gamma > 0)

    def test_antipersistent_negative_lag1(self):
        gamma = fgn_autocovariance(0.3, 5)
        assert gamma[1] < 0

    @given(st.floats(min_value=0.05, max_value=0.95))
    def test_property_decay(self, h):
        gamma = fgn_autocovariance(h, 50)
        # |gamma(k)| decays at long lags for any H.
        assert abs(gamma[49]) <= abs(gamma[1]) + 1e-9

    def test_h_bounds(self):
        with pytest.raises(ValueError):
            fgn_autocovariance(1.0, 3)
        with pytest.raises(ValueError):
            fgn_autocovariance(0.0, 3)


class TestFgn:
    def test_length(self):
        assert fgn(1000, 0.7, seed=0).shape == (1000,)

    def test_deterministic(self):
        assert np.array_equal(fgn(256, 0.8, seed=5), fgn(256, 0.8, seed=5))

    def test_h_half_is_white_noise(self, rng):
        x = fgn(50000, 0.5, seed=1)
        lag1 = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert abs(lag1) < 0.02

    def test_marginal_standard_normal(self):
        x = fgn(100000, 0.6, seed=2)
        assert abs(x.mean()) < 0.05
        assert x.std() == pytest.approx(1.0, abs=0.05)

    def test_sigma_scales(self):
        x = fgn(50000, 0.6, sigma=3.0, seed=3)
        assert x.std() == pytest.approx(3.0, abs=0.2)

    def test_sample_autocovariance_matches_theory(self):
        h = 0.75
        x = fgn(2**17, h, seed=4)
        gamma = fgn_autocovariance(h, 4)
        centred = x - x.mean()
        for k in range(1, 4):
            sample = float(np.mean(centred[:-k] * centred[k:]))
            assert sample == pytest.approx(gamma[k], abs=0.03)

    @pytest.mark.parametrize("h", [0.6, 0.75, 0.9])
    def test_estimators_recover_h(self, h):
        from repro.selfsim import hurst_summary

        x = fgn(2**14, h, seed=6)
        est = hurst_summary(x)
        mean_est = np.mean(list(est.values()))
        assert mean_est == pytest.approx(h, abs=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            fgn(0, 0.7)
        with pytest.raises(ValueError):
            fgn(10, 1.2)
        with pytest.raises(ValueError):
            fgn(10, 0.7, sigma=0.0)

    def test_non_power_of_two_length(self):
        assert fgn(1000, 0.7, seed=0).shape == (1000,)
        assert fgn(1025, 0.7, seed=0).shape == (1025,)


class TestFbm:
    def test_starts_at_zero(self):
        assert fbm(100, 0.7, seed=0)[0] == 0.0

    def test_increments_are_fgn(self):
        path = fbm(500, 0.7, seed=1)
        increments = np.diff(path)
        expected = fgn(500, 0.7, seed=1)
        assert np.allclose(increments, expected)

    def test_length(self):
        assert fbm(100, 0.7, seed=0).shape == (101,)
