"""Tests for the Hurst estimators (R/S, variance-time, periodogram, Whittle)."""

import math

import numpy as np
import pytest

from repro.selfsim import (
    aggregate_series,
    autocorrelation,
    estimate_hurst,
    fgn,
    hurst_local_whittle,
    hurst_periodogram,
    hurst_rs,
    hurst_summary,
    hurst_variance_time,
    periodogram,
    rs_pox_points,
    rs_statistic,
    variance_time_points,
    HURST_METHODS,
)


class TestAggregate:
    def test_block_means(self):
        out = aggregate_series([1.0, 2.0, 3.0, 4.0], 2)
        assert np.array_equal(out, [1.5, 3.5])

    def test_partial_block_dropped(self):
        out = aggregate_series([1.0, 2.0, 3.0, 4.0, 5.0], 2)
        assert np.array_equal(out, [1.5, 3.5])

    def test_m_one_identity(self):
        x = np.array([3.0, 1.0, 2.0])
        assert np.array_equal(aggregate_series(x, 1), x)

    def test_validation(self):
        with pytest.raises(ValueError):
            aggregate_series([1.0, 2.0], 0)
        with pytest.raises(ValueError, match="no complete block"):
            aggregate_series([1.0, 2.0], 5)

    def test_white_noise_variance_shrinks_as_1_over_m(self, rng):
        x = rng.normal(size=100000)
        v1 = x.var()
        v10 = aggregate_series(x, 10).var()
        assert v10 == pytest.approx(v1 / 10.0, rel=0.1)


class TestAutocorrelation:
    def test_lag_zero_is_one(self, rng):
        acf = autocorrelation(rng.normal(size=500), 5)
        assert acf[0] == pytest.approx(1.0)

    def test_alternating_series(self):
        x = np.array([1.0, -1.0] * 100)
        acf = autocorrelation(x, 2)
        assert acf[1] == pytest.approx(-1.0, abs=0.02)
        assert acf[2] == pytest.approx(1.0, abs=0.02)

    def test_matches_direct_computation(self, rng):
        x = rng.normal(size=300)
        acf = autocorrelation(x, 3)
        c = x - x.mean()
        direct = float(np.sum(c[:-2] * c[2:])) / float(np.sum(c * c))
        assert acf[2] == pytest.approx(direct, abs=1e-10)

    def test_constant_series(self):
        acf = autocorrelation(np.full(50, 2.0), 3)
        assert acf[0] == 1.0 and np.allclose(acf[1:], 0.0)

    def test_lag_validation(self):
        with pytest.raises(ValueError):
            autocorrelation([1.0, 2.0], 5)


class TestRS:
    def test_rs_statistic_positive(self, rng):
        assert rs_statistic(rng.normal(size=100)) > 0

    def test_rs_statistic_constant_nan(self):
        assert math.isnan(rs_statistic(np.full(10, 1.0)))

    def test_pox_points_grow_with_window(self, rng):
        log_n, log_rs = rs_pox_points(rng.normal(size=4000))
        assert len(log_n) == len(log_rs) > 10
        # R/S grows with n on average.
        small = log_rs[log_n < np.median(log_n)].mean()
        large = log_rs[log_n >= np.median(log_n)].mean()
        assert large > small

    def test_white_noise_h_half(self):
        h, fit = hurst_rs(fgn(2**14, 0.5, seed=0))
        assert h == pytest.approx(0.55, abs=0.08)  # small-sample R/S bias is upward
        assert fit.r_squared > 0.8

    def test_persistent_h_higher(self):
        h_low, _ = hurst_rs(fgn(2**14, 0.55, seed=1))
        h_high, _ = hurst_rs(fgn(2**14, 0.9, seed=1))
        assert h_high > h_low + 0.1

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            hurst_rs(np.ones(8))


class TestVarianceTime:
    def test_points_monotone_decreasing_for_noise(self, rng):
        log_m, log_var = variance_time_points(rng.normal(size=20000))
        # Overall trend is down with slope ~ -1.
        from repro.stats.regression import linear_fit

        fit = linear_fit(log_m, log_var)
        assert fit.slope == pytest.approx(-1.0, abs=0.15)

    def test_white_noise_h_half(self):
        h, fit = hurst_variance_time(fgn(2**15, 0.5, seed=2))
        assert h == pytest.approx(0.5, abs=0.06)

    def test_recovers_h(self):
        h, _ = hurst_variance_time(fgn(2**15, 0.8, seed=3))
        assert h == pytest.approx(0.8, abs=0.08)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError, match="too short"):
            hurst_variance_time(np.ones(10))


class TestPeriodogram:
    def test_frequencies_and_length(self, rng):
        x = rng.normal(size=256)
        omega, per = periodogram(x)
        assert omega.shape == per.shape == (128,)
        assert omega[0] == pytest.approx(2 * np.pi / 256)
        assert omega[-1] == pytest.approx(np.pi)

    def test_parseval_like_scaling(self, rng):
        """Sum of the periodogram tracks the series variance."""
        x = rng.normal(size=4096)
        omega, per = periodogram(x)
        # Per Eq. 18 normalization: mean of Per equals 2x variance (approx).
        assert per.mean() == pytest.approx(2.0 * x.var(), rel=0.1)

    def test_white_noise_flat_spectrum_h_half(self):
        h, _ = hurst_periodogram(fgn(2**15, 0.5, seed=4))
        assert h == pytest.approx(0.5, abs=0.07)

    def test_recovers_h(self):
        h, _ = hurst_periodogram(fgn(2**15, 0.85, seed=5))
        assert h == pytest.approx(0.85, abs=0.08)

    def test_pure_sine_peak(self):
        n = 1024
        t = np.arange(n)
        x = np.sin(2 * np.pi * 32 * t / n)
        omega, per = periodogram(x)
        assert np.argmax(per) == 31  # frequency index 32 -> position 31

    def test_low_fraction_validated(self):
        with pytest.raises(ValueError):
            hurst_periodogram(np.ones(100), low_fraction=1.5)


class TestWhittle:
    def test_white_noise(self):
        assert hurst_local_whittle(fgn(2**14, 0.5, seed=6)) == pytest.approx(0.5, abs=0.05)

    def test_recovers_h(self):
        assert hurst_local_whittle(fgn(2**14, 0.75, seed=7)) == pytest.approx(0.75, abs=0.07)

    def test_bandwidth_override(self):
        x = fgn(2**12, 0.7, seed=8)
        h = hurst_local_whittle(x, m=100)
        assert 0.4 < h < 1.0

    def test_too_short(self):
        with pytest.raises(ValueError):
            hurst_local_whittle(np.ones(8))


class TestUnifiedApi:
    def test_dispatch_all_methods(self):
        x = fgn(4096, 0.7, seed=9)
        for method in HURST_METHODS:
            est = estimate_hurst(x, method)
            assert est.method == method
            assert est.n == 4096
            assert 0.3 < est.h < 1.1

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            estimate_hurst(np.ones(100), "magic")

    def test_fit_attached_for_graphical_methods(self):
        x = fgn(4096, 0.6, seed=10)
        assert estimate_hurst(x, "rs").fit is not None
        assert estimate_hurst(x, "whittle").fit is None

    def test_is_self_similar_flag(self):
        x = fgn(2**14, 0.9, seed=11)
        assert estimate_hurst(x, "variance").is_self_similar

    def test_summary_keys(self):
        x = fgn(2048, 0.6, seed=12)
        s = hurst_summary(x)
        assert set(s) == {"rs", "variance", "periodogram"}
        s_all = hurst_summary(x, include_whittle=True)
        assert "whittle" in s_all

    def test_summary_nan_on_failure(self):
        s = hurst_summary(np.ones(64))
        assert any(math.isnan(v) for v in s.values())
