"""Tests for periodogram-based cycle detection."""

import numpy as np
import pytest

from repro.selfsim import Cycle, binned_counts, find_cycles


class TestFindCycles:
    def test_pure_sine_detected(self):
        n = 2048
        t = np.arange(n)
        x = np.sin(2 * np.pi * t / 64.0)
        cycles = find_cycles(x)
        assert cycles
        assert cycles[0].period == pytest.approx(64.0, rel=0.02)

    def test_sine_in_noise_detected(self, rng):
        n = 4096
        t = np.arange(n)
        x = np.sin(2 * np.pi * t / 100.0) + 0.5 * rng.normal(size=n)
        cycles = find_cycles(x)
        assert cycles
        assert cycles[0].period == pytest.approx(100.0, rel=0.05)

    def test_two_cycles_ranked_by_prominence(self, rng):
        n = 4096
        t = np.arange(n)
        x = 2.0 * np.sin(2 * np.pi * t / 64.0) + 0.8 * np.sin(2 * np.pi * t / 17.0)
        cycles = find_cycles(x, top_k=2)
        assert len(cycles) == 2
        assert cycles[0].period == pytest.approx(64.0, rel=0.05)
        assert cycles[1].period == pytest.approx(17.0, rel=0.05)

    def test_white_noise_clean(self, rng):
        assert find_cycles(rng.normal(size=4096)) == []

    def test_lrd_series_clean(self):
        """The 1/f trend of fGn must not masquerade as a cycle."""
        from repro.selfsim import fgn

        assert find_cycles(fgn(2**13, 0.85, seed=3)) == []

    def test_lublin_daily_cycle(self):
        """The Lublin model's rush-hour cycle shows up at 24 hours in the
        hourly arrival counts."""
        from repro.models import LublinModel

        w = LublinModel(cycle_amplitude=0.8, median_interarrival=40.0).generate(
            20000, seed=0
        )
        cycles = find_cycles(binned_counts(w, 3600.0))
        assert cycles
        assert cycles[0].period == pytest.approx(24.0, rel=0.05)

    def test_cycle_free_model_clean(self):
        from repro.models import LublinModel

        w = LublinModel(cycle_amplitude=0.0, median_interarrival=40.0).generate(
            20000, seed=0
        )
        assert find_cycles(binned_counts(w, 3600.0)) == []

    def test_short_series_empty(self):
        assert find_cycles(np.ones(10)) == []

    def test_top_k_validation(self):
        with pytest.raises(ValueError):
            find_cycles(np.ones(100), top_k=0)

    def test_cycle_fields_consistent(self):
        n = 2048
        x = np.sin(2 * np.pi * np.arange(n) / 32.0)
        c = find_cycles(x)[0]
        assert isinstance(c, Cycle)
        assert c.period == pytest.approx(2 * np.pi / c.frequency)
        assert c.power > 0 and c.prominence > 30
