"""Batched Hurst-estimator kernels ≡ the scalar reference loops, bitwise.

The windowed R/S and variance-time fast paths reduce along rows of
contiguous matrices, which numpy evaluates with the same pairwise
summation as the 1-D statistics — so equality here is exact, not
approximate, and any future drift (e.g. a reduction-order change) fails
loudly instead of silently shifting Table 3.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.selfsim.rs_analysis import (
    _rs_rows,
    rs_pox_points,
    rs_pox_points_reference,
    rs_statistic,
)
from repro.selfsim.variance_time import (
    variance_time_points,
    variance_time_points_reference,
)


def _series(seed, n, walk=True):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n)
    return np.cumsum(x) if walk else x


class TestRsEquivalence:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        n=st.integers(min_value=16, max_value=600),
        walk=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_pox_points_bitwise_equal(self, seed, n, walk):
        x = _series(seed, n, walk)
        fast = rs_pox_points(x)
        ref = rs_pox_points_reference(x)
        assert np.array_equal(fast[0], ref[0])
        assert np.array_equal(fast[1], ref[1])

    def test_pox_points_bitwise_equal_long_series(self):
        x = _series(42, 50_000)
        fast = rs_pox_points(x)
        ref = rs_pox_points_reference(x)
        assert np.array_equal(fast[0], ref[0])
        assert np.array_equal(fast[1], ref[1])

    def test_rows_kernel_matches_scalar_statistic(self):
        rng = np.random.default_rng(9)
        windows = rng.normal(size=(13, 64))
        got = _rs_rows(windows)
        want = [rs_statistic(row) for row in windows]
        assert np.array_equal(got, np.asarray(want))

    def test_constant_windows_stay_nan(self):
        windows = np.vstack([np.ones(16), np.arange(16.0)])
        got = _rs_rows(windows)
        assert np.isnan(got[0]) and np.isfinite(got[1])

    def test_constant_series_yields_no_points(self):
        fast = rs_pox_points(np.ones(64))
        ref = rs_pox_points_reference(np.ones(64))
        assert fast[0].size == 0 and ref[0].size == 0
        assert fast[0].shape == ref[0].shape


class TestVarianceTimeEquivalence:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        n=st.integers(min_value=16, max_value=2000),
        walk=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_points_bitwise_equal(self, seed, n, walk):
        x = _series(seed, n, walk)
        fast = variance_time_points(x)
        ref = variance_time_points_reference(x)
        assert np.array_equal(fast[0], ref[0])
        assert np.array_equal(fast[1], ref[1])

    def test_short_series_rejected_identically(self):
        with pytest.raises(ValueError):
            variance_time_points(np.arange(8.0))
        with pytest.raises(ValueError):
            variance_time_points_reference(np.arange(8.0))
