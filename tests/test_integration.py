"""Cross-module integration tests: full pipelines end to end."""

import numpy as np
import pytest

from repro import (
    Coplot,
    LublinModel,
    compute_statistics,
    read_swf,
    synthesize_workload,
    write_swf,
)
from repro.coplot import procrustes_disparity
from repro.selfsim import hurst_summary, workload_series
from repro.workload import split_time_windows
from repro.workload.variables import observation_matrix


class TestSwfThroughPipeline:
    def test_synthesize_write_read_analyze(self, tmp_path):
        """A synthesized log survives an SWF round trip with its analysis
        results intact."""
        original = synthesize_workload("KTH", n_jobs=3000, seed=4)
        path = tmp_path / "kth.swf"
        write_swf(original, path)
        loaded = read_swf(path)

        a = compute_statistics(original).by_sign()
        b = compute_statistics(loaded).by_sign()
        for sign in ("Rm", "Ri", "Pm", "Pi", "Im", "Ii"):
            assert b[sign] == pytest.approx(a[sign], rel=0.01)

    def test_model_stream_through_swf_and_hurst(self, tmp_path):
        model_stream = LublinModel().generate(4000, seed=1)
        path = tmp_path / "lublin.swf"
        write_swf(model_stream, path)
        loaded = read_swf(path)
        series = workload_series(loaded, "run_time")
        h = np.mean(list(hurst_summary(series).values()))
        assert 0.3 < h < 0.8  # i.i.d.-ish model: no strong self-similarity


class TestCoplotOnComputedStatistics:
    def test_split_and_map(self):
        """Section 6 pipeline: split a log, extract stats, Co-plot them."""
        log = synthesize_workload("SDSC", n_jobs=8000, seed=5)
        windows = split_time_windows(log, 4)
        stats = [compute_statistics(w) for w in windows]
        y, labels = observation_matrix(
            stats, ["Rm", "Ri", "Pm", "Pi", "Im", "Ii"]
        )
        result = Coplot(n_init=4).fit(y, labels=labels)
        # A stationary synthetic log: windows should not be wild outliers.
        assert result.alienation < 0.2
        assert len(result.labels) == 4

    def test_stability_across_mds_transforms(self):
        """Rank-image and isotonic SMACOF agree on the Figure 1 data up to
        rotation/reflection."""
        from repro.experiments.common import FIGURE1_SIGNS, production_matrix

        y, labels = production_matrix(FIGURE1_SIGNS)
        a = Coplot(transform="rank-image").fit(y, labels=labels)
        b = Coplot(transform="isotonic").fit(y, labels=labels)
        assert procrustes_disparity(a.coords, b.coords) < 0.15


class TestPublicApi:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None
