"""Tests for repro.util.tables."""

import math

import numpy as np
import pytest

from repro.util.tables import format_matrix, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["name", "x"], [["a", 1], ["bb", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert lines[2].startswith("a")
        # Right-aligned numeric column: widths match the header row.
        assert len(lines[2]) == len(lines[3])

    def test_none_renders_na(self):
        out = format_table(["k", "v"], [["a", None]])
        assert "N/A" in out

    def test_nan_renders_na(self):
        out = format_table(["k", "v"], [["a", math.nan]])
        assert "N/A" in out

    def test_float_format_applied(self):
        out = format_table(["k", "v"], [["a", 0.123456]], float_fmt="{:.2f}")
        assert "0.12" in out

    def test_title_prepended(self):
        out = format_table(["k"], [["a"]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError, match="row 0 has"):
            format_table(["a", "b"], [["only-one"]])

    def test_int_rendering(self):
        out = format_table(["v"], [[7]])
        assert "7" in out and "7.0" not in out

    def test_numpy_values_accepted(self):
        out = format_table(["v"], [[np.float64(1.5)], [np.int32(2)]])
        assert "1.5" in out and "2" in out

    def test_bool_rendering(self):
        out = format_table(["v"], [[True]])
        assert "True" in out

    def test_empty_rows_ok(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out


class TestFormatMatrix:
    def test_labels_present(self):
        mat = np.array([[1.0, 0.5], [0.5, 1.0]])
        out = format_matrix(mat, ["r1", "r2"], ["c1", "c2"])
        assert "r1" in out and "c2" in out

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="does not match"):
            format_matrix(np.eye(2), ["a"], ["b", "c"])

    def test_non_2d_raises(self):
        with pytest.raises(ValueError, match="2-D"):
            format_matrix(np.zeros(3), ["a", "b", "c"], [])
