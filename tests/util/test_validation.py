"""Tests for repro.util.validation."""

import numpy as np
import pytest

from repro.util.validation import (
    check_1d,
    check_2d,
    check_in_range,
    check_positive,
    check_probability,
)


class TestCheck1d:
    def test_coerces_list(self):
        out = check_1d([1, 2, 3])
        assert out.dtype == float and out.shape == (3,)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            check_1d(np.zeros((2, 2)))

    def test_min_len_enforced(self):
        with pytest.raises(ValueError, match="at least 5"):
            check_1d([1, 2], min_len=5)

    def test_error_names_argument(self):
        with pytest.raises(ValueError, match="myarg"):
            check_1d(np.zeros((2, 2)), "myarg")


class TestCheck2d:
    def test_coerces(self):
        assert check_2d([[1, 2]]).shape == (1, 2)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            check_2d([1, 2, 3])


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5) == 2.5

    def test_rejects_zero_strict(self):
        with pytest.raises(ValueError):
            check_positive(0.0)

    def test_zero_ok_non_strict(self):
        assert check_positive(0.0, strict=False) == 0.0

    def test_rejects_negative_non_strict(self):
        with pytest.raises(ValueError):
            check_positive(-1.0, strict=False)


class TestCheckProbability:
    @pytest.mark.parametrize("p", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, p):
        assert check_probability(p) == p

    @pytest.mark.parametrize("p", [-0.01, 1.01])
    def test_rejects_invalid(self, p):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            check_probability(p)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(1.0, 1.0, 2.0) == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_in_range(1.0, 1.0, 2.0, inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="must be in"):
            check_in_range(3.0, 0.0, 2.0)
