"""Tests for the atomic filesystem helpers (REP007 idiom)."""

import os
import threading

import pytest

from repro.util.atomicio import atomic_symlink, atomic_write_bytes, atomic_write_text


class TestAtomicWrite:
    def test_bytes_roundtrip(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(str(path), b"\x00\x01payload")
        assert path.read_bytes() == b"\x00\x01payload"

    def test_bytes_overwrite(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(str(path), b"old")
        atomic_write_bytes(str(path), b"new")
        assert path.read_bytes() == b"new"

    def test_no_temp_residue(self, tmp_path):
        atomic_write_bytes(str(tmp_path / "a"), b"x")
        atomic_write_text(str(tmp_path / "b"), "y")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["a", "b"]


class TestAtomicSymlink:
    def test_creates_fresh_link(self, tmp_path):
        (tmp_path / "run1").mkdir()
        link = tmp_path / "latest"
        atomic_symlink("run1", str(link), target_is_directory=True)
        assert os.readlink(str(link)) == "run1"

    def test_repoints_existing_link(self, tmp_path):
        (tmp_path / "run1").mkdir()
        (tmp_path / "run2").mkdir()
        link = tmp_path / "latest"
        atomic_symlink("run1", str(link))
        atomic_symlink("run2", str(link))
        assert os.readlink(str(link)) == "run2"
        assert (link / ".").exists()

    def test_replaces_regular_file(self, tmp_path):
        # os.replace clobbers whatever holds the name, even a plain file
        # left behind by the LATEST fallback on another filesystem.
        link = tmp_path / "latest"
        link.write_text("stale\n")
        (tmp_path / "run1").mkdir()
        atomic_symlink("run1", str(link))
        assert os.readlink(str(link)) == "run1"

    def test_no_temp_residue(self, tmp_path):
        (tmp_path / "run1").mkdir()
        for _ in range(5):
            atomic_symlink("run1", str(tmp_path / "latest"))
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["latest", "run1"]

    def test_concurrent_hammer_never_breaks_the_link(self, tmp_path):
        """The race the service hits: many jobs repointing ``latest`` at once.

        The old unlink+symlink dance raised FileExistsError under
        contention and left windows with no link at all; the atomic
        rename must do neither.
        """
        targets = []
        for i in range(4):
            (tmp_path / f"run{i}").mkdir()
            targets.append(f"run{i}")
        link = str(tmp_path / "latest")
        errors = []
        barrier = threading.Barrier(8)

        def flip(seed: int) -> None:
            barrier.wait()
            try:
                for i in range(50):
                    atomic_symlink(targets[(seed + i) % len(targets)], link)
                    # every observation mid-race sees a complete link
                    assert os.readlink(link) in targets
            except BaseException as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        threads = [threading.Thread(target=flip, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert os.readlink(link) in targets
        residue = [p for p in os.listdir(str(tmp_path)) if p.endswith(".tmp")]
        assert residue == []

    def test_symlink_failure_cleans_up(self, tmp_path, monkeypatch):
        (tmp_path / "run1").mkdir()
        link = str(tmp_path / "latest")
        real_replace = os.replace

        def boom(src, dst):
            raise PermissionError("no")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            atomic_symlink("run1", link)
        monkeypatch.setattr(os, "replace", real_replace)
        residue = [p for p in os.listdir(str(tmp_path)) if p.endswith(".tmp")]
        assert residue == []
