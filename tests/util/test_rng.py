"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import as_generator, spawn_children


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(as_generator(1).random(5), as_generator(2).random(5))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        a = as_generator(seq).random(3)
        b = as_generator(np.random.SeedSequence(7)).random(3)
        assert np.array_equal(a, b)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError, match="seed must be"):
            as_generator("not-a-seed")

    def test_numpy_integer_accepted(self):
        a = as_generator(np.int64(5)).random(3)
        b = as_generator(5).random(3)
        assert np.array_equal(a, b)


class TestSpawnChildren:
    def test_count(self):
        assert len(spawn_children(0, 4)) == 4

    def test_zero_children(self):
        assert spawn_children(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_children(0, -1)

    def test_children_independent(self):
        children = spawn_children(0, 2)
        a = children[0].random(100)
        b = children[1].random(100)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.3

    def test_deterministic_from_int_seed(self):
        a = [g.random(3) for g in spawn_children(9, 3)]
        b = [g.random(3) for g in spawn_children(9, 3)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_spawn_from_generator_advances(self):
        gen = np.random.default_rng(3)
        first = spawn_children(gen, 1)[0].random(3)
        second = spawn_children(gen, 1)[0].random(3)
        assert not np.array_equal(first, second)
