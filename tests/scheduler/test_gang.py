"""Tests for the gang-scheduling simulator."""

import numpy as np
import pytest

from repro.scheduler import UnlimitedAllocator, simulate_gang
from repro.workload import MachineInfo, Workload


def make_workload(jobs, procs=8):
    submit, run, size = zip(*jobs)
    return Workload.from_arrays(
        machine=MachineInfo("gang", procs),
        submit_time=np.array(submit, dtype=float),
        run_time=np.array(run, dtype=float),
        used_procs=np.array(size, dtype=int),
    )


class TestGangBasics:
    def test_uncontended_job_runs_at_full_speed(self):
        w = make_workload([(0.0, 10.0, 4)])
        res = simulate_gang(w)
        assert res.completion[0] == pytest.approx(10.0)
        assert res.stretch[0] == pytest.approx(1.0)

    def test_two_fitting_jobs_share_one_row(self):
        w = make_workload([(0.0, 10.0, 4), (0.0, 10.0, 4)])
        res = simulate_gang(w)
        assert np.allclose(res.completion, 10.0)
        assert res.max_rows == 1

    def test_oversubscription_halves_speed(self):
        # Two machine-filling jobs: two rows, each at half speed.
        w = make_workload([(0.0, 10.0, 8), (0.0, 10.0, 8)])
        res = simulate_gang(w)
        assert np.allclose(res.completion, 20.0)
        assert np.allclose(res.stretch, 2.0)
        assert res.max_rows == 2

    def test_no_queueing_late_arrival_admitted_immediately(self):
        # Job 2 arrives while job 1 occupies the machine: both make
        # progress at half speed from t=5 on.
        w = make_workload([(0.0, 10.0, 8), (5.0, 10.0, 8)])
        res = simulate_gang(w)
        # Job 1: 5s full speed + remaining 5s of work at 1/2 -> ends 15.
        assert res.completion[0] == pytest.approx(15.0)
        # Job 2: at t=15 it has received 5s of work; then full speed.
        assert res.completion[1] == pytest.approx(20.0)

    def test_rate_recovers_after_completion(self):
        # Short sharing period, then the survivor speeds back up.
        w = make_workload([(0.0, 2.0, 8), (0.0, 10.0, 8)])
        res = simulate_gang(w)
        # Shared until job 1 finishes at t=4 (2s work at 1/2 speed).
        assert res.completion[0] == pytest.approx(4.0)
        # Job 2 then has 8s of work left at full speed.
        assert res.completion[1] == pytest.approx(12.0)

    def test_all_jobs_complete(self, rng):
        # Offered load ~ 200 * 25 * 4.5 / (8 * 5000) ~ 0.56: stable.
        jobs = [
            (float(t), float(rng.uniform(1, 50)), int(rng.integers(1, 9)))
            for t in np.sort(rng.uniform(0, 5000, 200))
        ]
        res = simulate_gang(make_workload(jobs))
        assert not np.any(np.isnan(res.completion))
        assert np.all(res.completion >= res.submit)
        assert np.all(res.stretch >= 1.0 - 1e-9)

    def test_work_conservation(self, rng):
        """Total service delivered equals total work demanded."""
        jobs = [
            (float(t), float(rng.uniform(1, 20)), int(rng.integers(1, 9)))
            for t in np.sort(rng.uniform(0, 200, 50))
        ]
        res = simulate_gang(make_workload(jobs))
        # Residence time is at least the runtime for every job.
        assert np.all(res.residence >= res.runtime - 1e-6)

    def test_max_rows_guard(self):
        # 20 simultaneous machine-filling jobs with max_rows 4: refuse.
        w = make_workload([(0.0, 10.0, 8)] * 20)
        with pytest.raises(RuntimeError, match="max_rows"):
            simulate_gang(w, max_rows=4)

    def test_allocator_applies(self):
        w = make_workload([(0.0, 10.0, 5), (0.0, 10.0, 5)], procs=8)
        # Unlimited: 5+5=10 > 8 -> two rows, stretch 2.
        res = simulate_gang(w, UnlimitedAllocator())
        assert res.max_rows == 2

    def test_responsiveness_vs_space_sharing(self, rng):
        """Gang scheduling's selling point: short jobs are never stuck
        behind long ones (no queueing), so their residence is bounded by
        stretch, not by the long job's runtime."""
        # A short job arrives right after a machine-filling long job.
        w = make_workload([(0.0, 1000.0, 8), (1.0, 10.0, 8)])
        gang = simulate_gang(w)
        short_residence = gang.residence[1]
        # Space-shared FCFS would hold it for ~999s; gang time-slices.
        assert short_residence < 100.0
