"""Tests for the processor allocators."""

import pytest

from repro.scheduler import (
    LimitedAllocator,
    PowerOfTwoAllocator,
    UnlimitedAllocator,
    allocator_for_flexibility,
)


class TestUnlimited:
    def test_identity(self):
        a = UnlimitedAllocator()
        assert a.consumed(1) == 1
        assert a.consumed(17) == 17

    def test_flexibility_rank(self):
        assert UnlimitedAllocator.flexibility == 3


class TestPowerOfTwo:
    @pytest.mark.parametrize(
        "requested,expected",
        [(1, 1), (2, 2), (3, 4), (4, 4), (5, 8), (9, 16), (17, 32), (33, 64)],
    )
    def test_rounds_up(self, requested, expected):
        assert PowerOfTwoAllocator().consumed(requested) == expected

    def test_min_size(self):
        a = PowerOfTwoAllocator(min_size=32)
        assert a.consumed(1) == 32
        assert a.consumed(33) == 64

    def test_min_size_validation(self):
        with pytest.raises(ValueError):
            PowerOfTwoAllocator(min_size=0)

    def test_flexibility_rank(self):
        assert PowerOfTwoAllocator.flexibility == 1


class TestLimited:
    @pytest.mark.parametrize(
        "requested,expected", [(1, 4), (4, 4), (5, 8), (9, 12), (12, 12)]
    )
    def test_block_rounding(self, requested, expected):
        assert LimitedAllocator(block=4).consumed(requested) == expected

    def test_block_one_is_unlimited(self):
        assert LimitedAllocator(block=1).consumed(7) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            LimitedAllocator(block=0)


class TestValidate:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match=">= 1"):
            UnlimitedAllocator().validate(0, 64)

    def test_rejects_oversized(self):
        with pytest.raises(ValueError, match="more"):
            PowerOfTwoAllocator().validate(65, 64)

    def test_passes_through(self):
        assert LimitedAllocator(block=4).validate(5, 64) == 8


class TestFactory:
    def test_ranks(self):
        assert isinstance(allocator_for_flexibility(1), PowerOfTwoAllocator)
        assert isinstance(allocator_for_flexibility(2), LimitedAllocator)
        assert isinstance(allocator_for_flexibility(3), UnlimitedAllocator)

    def test_kwargs_forwarded(self):
        a = allocator_for_flexibility(1, min_size=16)
        assert a.min_size == 16

    def test_bad_rank(self):
        with pytest.raises(ValueError):
            allocator_for_flexibility(4)
