"""Tests for the processor allocators."""

import numpy as np
import pytest

from repro.scheduler import (
    LimitedAllocator,
    PowerOfTwoAllocator,
    ProcessorAllocator,
    UnlimitedAllocator,
    allocator_for_flexibility,
)


class TestUnlimited:
    def test_identity(self):
        a = UnlimitedAllocator()
        assert a.consumed(1) == 1
        assert a.consumed(17) == 17

    def test_flexibility_rank(self):
        assert UnlimitedAllocator.flexibility == 3


class TestPowerOfTwo:
    @pytest.mark.parametrize(
        "requested,expected",
        [(1, 1), (2, 2), (3, 4), (4, 4), (5, 8), (9, 16), (17, 32), (33, 64)],
    )
    def test_rounds_up(self, requested, expected):
        assert PowerOfTwoAllocator().consumed(requested) == expected

    def test_min_size(self):
        a = PowerOfTwoAllocator(min_size=32)
        assert a.consumed(1) == 32
        assert a.consumed(33) == 64

    def test_min_size_validation(self):
        with pytest.raises(ValueError):
            PowerOfTwoAllocator(min_size=0)

    def test_flexibility_rank(self):
        assert PowerOfTwoAllocator.flexibility == 1


class TestLimited:
    @pytest.mark.parametrize(
        "requested,expected", [(1, 4), (4, 4), (5, 8), (9, 12), (12, 12)]
    )
    def test_block_rounding(self, requested, expected):
        assert LimitedAllocator(block=4).consumed(requested) == expected

    def test_block_one_is_unlimited(self):
        assert LimitedAllocator(block=1).consumed(7) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            LimitedAllocator(block=0)


class TestValidate:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match=">= 1"):
            UnlimitedAllocator().validate(0, 64)

    def test_rejects_oversized(self):
        with pytest.raises(ValueError, match="more"):
            PowerOfTwoAllocator().validate(65, 64)

    def test_passes_through(self):
        assert LimitedAllocator(block=4).validate(5, 64) == 8


class TestFactory:
    def test_ranks(self):
        assert isinstance(allocator_for_flexibility(1), PowerOfTwoAllocator)
        assert isinstance(allocator_for_flexibility(2), LimitedAllocator)
        assert isinstance(allocator_for_flexibility(3), UnlimitedAllocator)

    def test_kwargs_forwarded(self):
        a = allocator_for_flexibility(1, min_size=16)
        assert a.min_size == 16

    def test_bad_rank(self):
        with pytest.raises(ValueError):
            allocator_for_flexibility(4)


class TestValidateArray:
    ALLOCATORS = [
        UnlimitedAllocator(),
        PowerOfTwoAllocator(),
        PowerOfTwoAllocator(min_size=32),
        LimitedAllocator(block=4),
    ]

    def test_matches_scalar_validate(self):
        rng = np.random.default_rng(0)
        requested = rng.integers(1, 60, 500)
        for alloc in self.ALLOCATORS:
            expected = np.array(
                [alloc.validate(int(r), 128) for r in requested], dtype=np.int64
            )
            np.testing.assert_array_equal(
                alloc.validate_array(requested, 128), expected
            )

    def test_empty_input(self):
        out = UnlimitedAllocator().validate_array(np.array([], dtype=int), 64)
        assert out.size == 0 and out.dtype == np.int64

    def test_size_error_matches_scalar_message(self):
        req = np.array([4, 8, 0, 2])
        with pytest.raises(ValueError, match="must be >= 1, got 0"):
            UnlimitedAllocator().validate_array(req, 64)

    def test_oversubscription_error_matches_scalar_message(self):
        req = np.array([4, 200, 2])
        with pytest.raises(ValueError, match="more"):
            UnlimitedAllocator().validate_array(req, 64)

    def test_first_offender_in_array_order_wins(self):
        # An oversized job *before* an invalid one raises the consumed
        # error, exactly as the scalar loop would.
        req = np.array([4, 200, 0])
        with pytest.raises(ValueError, match="consumes"):
            UnlimitedAllocator().validate_array(req, 64)
        # And an invalid job before an oversized one raises the size error.
        req = np.array([4, 0, 200])
        with pytest.raises(ValueError, match="must be >= 1"):
            UnlimitedAllocator().validate_array(req, 64)

    def test_scalar_fallback_for_custom_allocators(self):
        class DoubleAllocator(ProcessorAllocator):
            flexibility = 2

            def consumed(self, requested: int) -> int:
                return 2 * int(requested)

        out = DoubleAllocator().validate_array(np.array([1, 2, 3]), 64)
        np.testing.assert_array_equal(out, [2, 4, 6])
