"""Bit-for-bit equivalence of the array-fast simulator loop vs the
retained per-event reference loop.

The fast :func:`~repro.scheduler.simulator.simulate` replaces per-job
allocator validation with one bulk call, batches arrival handling, skips
provably-empty policy calls, and preallocates its trace buffers — none of
which may change a single scheduled time.  Every check here asserts exact
array equality against :func:`~repro.scheduler.simulator.simulate_reference`.
"""

import numpy as np
import pytest

from repro.scheduler import (
    ConservativeBackfillScheduler,
    EasyBackfillScheduler,
    FcfsScheduler,
    LimitedAllocator,
    PowerOfTwoAllocator,
    UnlimitedAllocator,
    simulate,
    simulate_reference,
)
from repro.workload.workload import MachineInfo, Workload

POLICIES = [FcfsScheduler, EasyBackfillScheduler, ConservativeBackfillScheduler]
SEEDS = list(range(5))


def load_controlled_workload(
    n,
    seed,
    *,
    machine_procs=128,
    load=0.8,
    mean_rt=300.0,
    bad_frac=0.02,
):
    """A stream whose offered load keeps backfilling queues bounded.

    Near-critical load matters for coverage (queues form, backfill
    happens) but conservative backfilling is quadratic in queue length,
    so the equivalence sweep pins load below saturation.
    """
    rng = np.random.default_rng(seed)
    run_time = rng.exponential(mean_rt, n)
    procs = 2 ** rng.integers(0, 6, n)
    rate = load * machine_procs / (mean_rt * procs.mean())
    submit = np.cumsum(rng.exponential(1.0 / rate, n))
    bad = rng.random(n) < bad_frac
    run_time = run_time.copy()
    run_time[bad] = -1.0  # unusable jobs both loops must skip identically
    machine = MachineInfo(name="eq", processors=machine_procs)
    return Workload.from_arrays(
        machine=machine,
        name="eq",
        job_id=np.arange(1, n + 1),
        submit_time=submit,
        run_time=run_time,
        used_procs=procs.astype(np.int64),
    )


def assert_schedules_identical(a, b):
    np.testing.assert_array_equal(a.submit, b.submit)
    np.testing.assert_array_equal(a.start, b.start)
    np.testing.assert_array_equal(a.runtime, b.runtime)
    np.testing.assert_array_equal(a.consumed, b.consumed)
    np.testing.assert_array_equal(a.queue_depth_times, b.queue_depth_times)
    np.testing.assert_array_equal(a.queue_depths, b.queue_depths)
    assert a.machine_procs == b.machine_procs
    assert a.scheduler_name == b.scheduler_name


class TestPolicySweep:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_bitwise_across_seeds(self, policy, seed):
        w = load_controlled_workload(2500, seed)
        assert_schedules_identical(
            simulate(w, policy(), UnlimitedAllocator()),
            simulate_reference(w, policy(), UnlimitedAllocator()),
        )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_inflexible_allocators(self, policy):
        w = load_controlled_workload(1500, 7, machine_procs=256)
        for alloc in (PowerOfTwoAllocator(min_size=4), LimitedAllocator(block=8)):
            assert_schedules_identical(
                simulate(w, policy(), alloc),
                simulate_reference(w, policy(), alloc),
            )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_estimate_factor(self, policy):
        w = load_controlled_workload(1200, 3)
        assert_schedules_identical(
            simulate(w, policy(), UnlimitedAllocator(), estimate_factor=2.5),
            simulate_reference(w, policy(), UnlimitedAllocator(), estimate_factor=2.5),
        )


class TestEdgeShapes:
    def test_single_processor_machine(self):
        rng = np.random.default_rng(0)
        n = 400
        machine = MachineInfo(name="tiny", processors=1)
        w = Workload.from_arrays(
            machine=machine,
            name="tiny",
            job_id=np.arange(1, n + 1),
            submit_time=np.cumsum(rng.exponential(10.0, n)),
            run_time=rng.exponential(8.0, n),
            used_procs=np.ones(n, dtype=np.int64),
        )
        for policy in POLICIES:
            assert_schedules_identical(
                simulate(w, policy()), simulate_reference(w, policy())
            )

    def test_all_jobs_unusable(self):
        w = load_controlled_workload(300, 1, bad_frac=1.1)
        for policy in POLICIES:
            fast = simulate(w, policy(), UnlimitedAllocator())
            ref = simulate_reference(w, policy(), UnlimitedAllocator())
            assert fast.submit.size == 0
            assert_schedules_identical(fast, ref)

    def test_single_job(self):
        machine = MachineInfo(name="one", processors=4)
        w = Workload.from_arrays(
            machine=machine,
            name="one",
            job_id=np.array([1]),
            submit_time=np.array([0.0]),
            run_time=np.array([5.0]),
            used_procs=np.array([2], dtype=np.int64),
        )
        for policy in POLICIES:
            assert_schedules_identical(
                simulate(w, policy()), simulate_reference(w, policy())
            )

    def test_simultaneous_arrivals(self):
        # Arrival batching must produce the same trace when submits tie.
        machine = MachineInfo(name="ties", processors=8)
        n = 60
        w = Workload.from_arrays(
            machine=machine,
            name="ties",
            job_id=np.arange(1, n + 1),
            submit_time=np.repeat(np.arange(10.0), 6),
            run_time=np.full(n, 7.0),
            used_procs=np.full(n, 2, dtype=np.int64),
        )
        for policy in POLICIES:
            assert_schedules_identical(
                simulate(w, policy()), simulate_reference(w, policy())
            )


class TestDefaultAllocator:
    def test_flexibility_rank_drives_default(self):
        w = load_controlled_workload(500, 9)
        machine = MachineInfo(
            name="ranked", processors=128, allocation_flexibility=1
        )
        from repro.workload.fields import FIELD_NAMES

        ranked = Workload(
            {name: w.column(name) for name in FIELD_NAMES}, machine, name="ranked"
        )
        assert_schedules_identical(
            simulate(ranked, FcfsScheduler()),
            simulate_reference(ranked, FcfsScheduler()),
        )
