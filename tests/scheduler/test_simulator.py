"""Tests for the event-driven simulator and metrics."""

import numpy as np
import pytest

from repro.scheduler import (
    ConservativeBackfillScheduler,
    EasyBackfillScheduler,
    FcfsScheduler,
    PowerOfTwoAllocator,
    UnlimitedAllocator,
    compute_metrics,
    simulate,
)
from repro.workload import MachineInfo, Workload
from repro.workload.fields import MISSING


def make_workload(jobs, procs=8, name="sim"):
    """jobs: list of (submit, runtime, size)."""
    submit, run, size = zip(*jobs)
    return Workload.from_arrays(
        machine=MachineInfo(name, procs),
        name=name,
        submit_time=np.array(submit, dtype=float),
        run_time=np.array(run, dtype=float),
        used_procs=np.array(size, dtype=int),
    )


class TestSimulatorBasics:
    def test_empty_machine_runs_immediately(self):
        w = make_workload([(0.0, 10.0, 4)])
        res = simulate(w, FcfsScheduler())
        assert res.start[0] == 0.0
        assert res.wait[0] == 0.0

    def test_sequential_contention(self):
        # Two machine-filling jobs: the second waits for the first.
        w = make_workload([(0.0, 10.0, 8), (1.0, 10.0, 8)])
        res = simulate(w, FcfsScheduler())
        assert res.start[1] == pytest.approx(10.0)
        assert res.wait[1] == pytest.approx(9.0)

    def test_parallel_fit(self):
        w = make_workload([(0.0, 10.0, 4), (0.0, 10.0, 4)])
        res = simulate(w, FcfsScheduler())
        assert np.allclose(res.start, 0.0)

    def test_capacity_never_exceeded(self):
        rng = np.random.default_rng(0)
        jobs = [
            (float(t), float(rng.uniform(1, 40)), int(rng.integers(1, 9)))
            for t in np.sort(rng.uniform(0, 500, 120))
        ]
        w = make_workload(jobs)
        res = simulate(w, EasyBackfillScheduler())
        # Reconstruct busy processors over time from starts/ends.
        events = sorted(
            [(s, c) for s, c in zip(res.start, res.consumed)]
            + [(e, -c) for e, c in zip(res.end, res.consumed)]
        )
        busy = 0
        for _, delta in events:
            busy += delta
            assert busy <= 8

    def test_all_jobs_eventually_start(self):
        rng = np.random.default_rng(1)
        jobs = [
            (float(t), float(rng.uniform(1, 30)), int(rng.integers(1, 9)))
            for t in np.sort(rng.uniform(0, 300, 80))
        ]
        for policy in (FcfsScheduler(), EasyBackfillScheduler(), ConservativeBackfillScheduler()):
            res = simulate(make_workload(jobs), policy)
            assert not np.any(np.isnan(res.start))
            assert np.all(res.start >= res.submit - 1e-9)

    def test_fcfs_order_preserved(self):
        rng = np.random.default_rng(2)
        jobs = [
            (float(t), float(rng.uniform(1, 30)), int(rng.integers(1, 9)))
            for t in np.sort(rng.uniform(0, 300, 60))
        ]
        res = simulate(make_workload(jobs), FcfsScheduler())
        # FCFS never reorders: start times are nondecreasing in submit order.
        assert np.all(np.diff(res.start) >= -1e-9)

    def test_allocator_inflates_consumption(self):
        w = make_workload([(0.0, 10.0, 3)], procs=8)
        res = simulate(w, FcfsScheduler(), PowerOfTwoAllocator())
        assert res.consumed[0] == 4

    def test_allocator_default_from_machine(self):
        m = MachineInfo("m", 8, allocation_flexibility=1)
        w = Workload.from_arrays(
            machine=m, submit_time=[0.0], run_time=[5.0], used_procs=[3]
        )
        res = simulate(w, FcfsScheduler())
        assert res.consumed[0] == 4  # power-of-two rank applied

    def test_unknown_runtime_jobs_skipped(self):
        w = make_workload([(0.0, 10.0, 4), (1.0, MISSING, 4)])
        res = simulate(w, FcfsScheduler())
        assert res.submit.shape == (1,)

    def test_estimate_factor_validation(self):
        w = make_workload([(0.0, 1.0, 1)])
        with pytest.raises(ValueError):
            simulate(w, FcfsScheduler(), estimate_factor=0.0)


class TestPolicyOrdering:
    @pytest.fixture(scope="class")
    def contended(self):
        rng = np.random.default_rng(3)
        n = 400
        jobs = [
            (float(t), float(rng.lognormal(3.0, 1.2)), int(rng.integers(1, 9)))
            for t in np.sort(rng.uniform(0, 4000, n))
        ]
        return make_workload(jobs)

    def test_easy_beats_fcfs(self, contended):
        fcfs = compute_metrics(simulate(contended, FcfsScheduler()))
        easy = compute_metrics(simulate(contended, EasyBackfillScheduler()))
        assert easy.mean_wait <= fcfs.mean_wait

    def test_conservative_beats_fcfs(self, contended):
        fcfs = compute_metrics(simulate(contended, FcfsScheduler()))
        cons = compute_metrics(simulate(contended, ConservativeBackfillScheduler()))
        assert cons.mean_wait <= fcfs.mean_wait

    def test_flexible_allocation_not_worse(self, contended):
        easy = EasyBackfillScheduler()
        pow2 = compute_metrics(simulate(contended, easy, PowerOfTwoAllocator()))
        free = compute_metrics(simulate(contended, easy, UnlimitedAllocator()))
        assert free.mean_wait <= pow2.mean_wait


class TestMetrics:
    def test_known_values(self):
        w = make_workload([(0.0, 10.0, 8), (0.0, 10.0, 8)])
        res = simulate(w, FcfsScheduler())
        m = compute_metrics(res)
        assert m.n_jobs == 2
        assert m.mean_wait == pytest.approx(5.0)  # 0 and 10
        assert m.max_wait == pytest.approx(10.0)
        assert m.makespan == pytest.approx(20.0)
        assert m.utilization == pytest.approx(1.0)

    def test_bounded_slowdown_floor(self):
        # A 1-second job waiting 100s: bounded slowdown uses tau=10.
        w = make_workload([(0.0, 50.0, 8), (0.0, 1.0, 8)])
        res = simulate(w, FcfsScheduler())
        m = compute_metrics(res)
        # job 2: wait 50, runtime 1 -> (50+1)/10 = 5.1; job 1: 50/50=1.
        assert m.mean_bounded_slowdown == pytest.approx((1.0 + 5.1) / 2)

    def test_queue_depth_tracked(self):
        w = make_workload([(0.0, 100.0, 8), (1.0, 10.0, 8), (2.0, 10.0, 8)])
        res = simulate(w, FcfsScheduler())
        assert res.queue_depths.max() == 2

    def test_incomplete_simulation_rejected(self):
        from repro.scheduler.simulator import ScheduleResult

        res = ScheduleResult(
            submit=np.array([0.0]),
            start=np.array([np.nan]),
            runtime=np.array([1.0]),
            consumed=np.array([1]),
            queue_depth_times=np.array([0.0]),
            queue_depths=np.array([0]),
            machine_procs=4,
            scheduler_name="x",
        )
        with pytest.raises(ValueError, match="never started"):
            compute_metrics(res)

    def test_empty_workload(self):
        w = make_workload([(0.0, 1.0, 1)]).filter(np.zeros(1, dtype=bool))
        res = simulate(w, FcfsScheduler())
        m = compute_metrics(res)
        assert m.n_jobs == 0
        assert m.makespan == 0.0


class TestEstimateFactor:
    def test_overestimates_change_backfilling(self):
        """With inflated runtime estimates EASY sees less room before the
        shadow time, so backfilling decisions change."""
        rng = np.random.default_rng(9)
        jobs = [
            (float(t), float(rng.lognormal(3.5, 1.2)), int(rng.integers(1, 9)))
            for t in np.sort(rng.uniform(0, 3000, 300))
        ]
        w = make_workload(jobs)
        exact = simulate(w, EasyBackfillScheduler(), estimate_factor=1.0)
        inflated = simulate(w, EasyBackfillScheduler(), estimate_factor=10.0)
        # Both complete every job; schedules differ somewhere.
        assert not np.any(np.isnan(exact.start))
        assert not np.any(np.isnan(inflated.start))
        assert not np.allclose(exact.start, inflated.start)

    def test_fcfs_insensitive_to_estimates(self):
        rng = np.random.default_rng(10)
        jobs = [
            (float(t), float(rng.lognormal(3.0, 1.0)), int(rng.integers(1, 9)))
            for t in np.sort(rng.uniform(0, 2000, 200))
        ]
        w = make_workload(jobs)
        a = simulate(w, FcfsScheduler(), estimate_factor=1.0)
        b = simulate(w, FcfsScheduler(), estimate_factor=5.0)
        assert np.allclose(a.start, b.start)
