"""Unit tests for the scheduling policies (direct select() calls)."""

import pytest

from repro.scheduler import (
    ConservativeBackfillScheduler,
    EasyBackfillScheduler,
    FcfsScheduler,
    scheduler_for_flexibility,
)
from repro.scheduler.policies import QueuedJob


def job(index, size, runtime, submit=0.0):
    return QueuedJob(
        index=index, submit=submit, size=size, runtime=runtime, estimate=runtime
    )


class TestFcfs:
    def test_starts_head_while_fits(self):
        queue = [job(0, 4, 10), job(1, 4, 10), job(2, 8, 10)]
        started = FcfsScheduler().select(0.0, queue, free=8, running=[])
        assert [j.index for j in started] == [0, 1]

    def test_never_jumps_queue(self):
        # Head needs 8, only 4 free; the small job behind must NOT start.
        queue = [job(0, 8, 10), job(1, 2, 1)]
        started = FcfsScheduler().select(0.0, queue, free=4, running=[(50.0, 4)])
        assert started == []

    def test_empty_queue(self):
        assert FcfsScheduler().select(0.0, [], free=8, running=[]) == []


class TestEasy:
    def test_backfills_short_job(self):
        # Head needs 8 (free at t=100); the 1-unit job runs 10s < shadow.
        queue = [job(0, 8, 50), job(1, 2, 10)]
        started = EasyBackfillScheduler().select(
            0.0, queue, free=4, running=[(100.0, 4)]
        )
        assert [j.index for j in started] == [1]

    def test_does_not_delay_head(self):
        # The backfill candidate would run past the shadow AND needs more
        # than the extra processors: blocked.
        queue = [job(0, 8, 50), job(1, 4, 1000)]
        started = EasyBackfillScheduler().select(
            0.0, queue, free=4, running=[(100.0, 4)]
        )
        assert started == []

    def test_backfill_within_extra(self):
        # Machine of 12: running (end 100, size 8), free 4.  Head wants 8
        # -> shadow 100, extra = (4+8)-8 = 4.  A long job of size 4 fits
        # inside the extra and may run past the shadow.
        queue = [job(0, 8, 50), job(1, 4, 1000)]
        started = EasyBackfillScheduler().select(
            0.0, queue, free=4, running=[(100.0, 8)]
        )
        assert [j.index for j in started] == [1]

    def test_head_started_first(self):
        queue = [job(0, 2, 10), job(1, 8, 50)]
        started = EasyBackfillScheduler().select(0.0, queue, free=4, running=[])
        assert [j.index for j in started] == [0]

    def test_multiple_backfills_respect_capacity(self):
        queue = [job(0, 8, 50), job(1, 2, 5), job(2, 2, 5), job(3, 2, 5)]
        started = EasyBackfillScheduler().select(
            0.0, queue, free=4, running=[(100.0, 4)]
        )
        total = sum(j.size for j in started)
        assert total <= 4
        assert [j.index for j in started] == [1, 2]


class TestConservative:
    def test_starts_when_fits(self):
        queue = [job(0, 4, 10)]
        started = ConservativeBackfillScheduler().select(0.0, queue, free=8, running=[])
        assert [j.index for j in started] == [0]

    def test_backfills_without_delaying_reservations(self):
        # Head (8) reserved at t=100.  Short small job can slot in now.
        queue = [job(0, 8, 50), job(1, 2, 10)]
        started = ConservativeBackfillScheduler().select(
            0.0, queue, free=4, running=[(100.0, 4)]
        )
        assert [j.index for j in started] == [1]

    def test_respects_second_reservation(self):
        # Two queued 8-wide jobs hold reservations at 100 and 150; a
        # 4-wide job lasting 1000 would collide with both reservations'
        # capacity and must wait.
        queue = [job(0, 8, 50), job(1, 8, 50), job(2, 4, 1000)]
        started = ConservativeBackfillScheduler().select(
            0.0, queue, free=4, running=[(100.0, 4)]
        )
        assert [j.index for j in started] == []

    def test_never_oversubscribes(self):
        queue = [job(i, 3, 10) for i in range(5)]
        started = ConservativeBackfillScheduler().select(0.0, queue, free=8, running=[])
        assert sum(j.size for j in started) <= 8


class TestFactory:
    def test_ranks(self):
        assert scheduler_for_flexibility(1).name == "FCFS"
        assert scheduler_for_flexibility(2).name == "EASY"
        assert scheduler_for_flexibility(3).name == "conservative"

    def test_bad_rank(self):
        with pytest.raises(ValueError):
            scheduler_for_flexibility(0)
