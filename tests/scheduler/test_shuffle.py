"""Tests for the independence-preserving shuffles."""

import numpy as np
import pytest

from repro.archive import synthesize_workload
from repro.scheduler import shuffle_interarrivals, shuffle_order
from repro.selfsim import hurst_summary, workload_series
from repro.workload import compute_statistics


@pytest.fixture(scope="module")
def lanl():
    return synthesize_workload("LANL", n_jobs=8000, seed=3)


class TestShuffleInterarrivals:
    def test_gap_multiset_preserved(self, lanl):
        out = shuffle_interarrivals(lanl, seed=0)
        gaps_a = np.sort(np.diff(lanl.column("submit_time")))
        gaps_b = np.sort(np.diff(out.column("submit_time")))
        assert np.allclose(gaps_a, gaps_b)

    def test_attributes_untouched(self, lanl):
        out = shuffle_interarrivals(lanl, seed=0)
        assert np.array_equal(out.column("run_time"), lanl.sorted_by_submit().column("run_time"))

    def test_marginal_statistics_preserved(self, lanl):
        a = compute_statistics(lanl).by_sign()
        b = compute_statistics(shuffle_interarrivals(lanl, seed=0)).by_sign()
        for sign in ("Im", "Ii", "Rm", "Ri", "Pm", "Pi"):
            assert b[sign] == pytest.approx(a[sign], rel=0.02)

    def test_destroys_arrival_lrd(self, lanl):
        original = np.mean(
            list(hurst_summary(workload_series(lanl, "interarrival")).values())
        )
        shuffled_w = shuffle_interarrivals(lanl, seed=0)
        shuffled = np.mean(
            list(hurst_summary(workload_series(shuffled_w, "interarrival")).values())
        )
        assert original > 0.6
        assert shuffled < 0.58

    def test_name_suffix(self, lanl):
        assert shuffle_interarrivals(lanl, seed=0).name.endswith("-iidgaps")

    def test_deterministic(self, lanl):
        a = shuffle_interarrivals(lanl, seed=5).column("submit_time")
        b = shuffle_interarrivals(lanl, seed=5).column("submit_time")
        assert np.array_equal(a, b)


class TestShuffleOrder:
    def test_arrivals_untouched(self, lanl):
        out = shuffle_order(lanl, seed=0)
        assert np.array_equal(
            out.column("submit_time"), lanl.sorted_by_submit().column("submit_time")
        )

    def test_attribute_multisets_preserved(self, lanl):
        out = shuffle_order(lanl, seed=0)
        for field in ("run_time", "used_procs", "user_id"):
            assert np.allclose(
                np.sort(out.column(field)), np.sort(lanl.column(field))
            )

    def test_rows_travel_together(self, lanl):
        """A job's runtime and size stay paired through the shuffle."""
        base = lanl.sorted_by_submit()
        out = shuffle_order(lanl, seed=0)
        pairs_before = set(
            zip(base.column("run_time").round(6), base.column("used_procs"))
        )
        pairs_after = set(
            zip(out.column("run_time").round(6), out.column("used_procs"))
        )
        assert pairs_before == pairs_after

    def test_destroys_attribute_lrd(self, lanl):
        original = np.mean(
            list(hurst_summary(workload_series(lanl, "run_time")).values())
        )
        shuffled_w = shuffle_order(lanl, seed=0)
        shuffled = np.mean(
            list(hurst_summary(workload_series(shuffled_w, "run_time")).values())
        )
        assert original > 0.6
        assert shuffled < 0.58

    def test_unknown_field_rejected(self, lanl):
        with pytest.raises(ValueError, match="unknown fields"):
            shuffle_order(lanl, fields=["not_a_field"])

    def test_composition_kills_all_lrd(self, lanl):
        both = shuffle_order(shuffle_interarrivals(lanl, seed=1), seed=2)
        for attr in ("run_time", "interarrival", "used_procs"):
            h = np.mean(list(hurst_summary(workload_series(both, attr)).values()))
            assert h < 0.58, attr
