"""Benchmark configuration.

Every table/figure of the paper has one benchmark module that regenerates
it and asserts its headline findings; ablation modules cover the design
choices DESIGN.md §6 calls out.  Heavy experiment benches run a single
round (they are end-to-end regenerations, not micro-benchmarks); the
micro benches of the core primitives use pytest-benchmark's defaults.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an expensive experiment exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
