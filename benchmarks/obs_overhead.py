"""Trace-overhead budget check: ``make obs-bench``.

Measures what streaming observability costs a quick-suite run and writes
the verdict to ``BENCH_obs.json``.  Rather than differencing two noisy
end-to-end timings (where scheduler jitter easily exceeds the signal),
it measures the two hard numbers directly:

1. the wall time of a traced quick run and how many records its trace
   holds;
2. the marginal cost of one streamed record (open + append + fsync),
   timed over a batch in isolation;

and bounds the overhead as ``records x per_record_s / quick_wall_s``.
That is an upper bound on what tracing added — every record's emit cost
counted against the traced wall — and it must stay under 5%.

Run directly (``python benchmarks/obs_overhead.py``); exits nonzero when
the budget is blown.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import sys
import tempfile

BUDGET = 0.05  #: tracing may cost at most 5% of the quick suite
EMIT_SAMPLES = 300
OUT_PATH = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_obs.json")


def _measure_per_record_s() -> float:
    from repro.obs import TraceWriter
    from repro.obs import clock

    with tempfile.TemporaryDirectory() as tmp:
        writer = TraceWriter(os.path.join(tmp, "trace.jsonl"))
        record = {
            "type": "span",
            "name": "bench.emit",
            "trace_id": writer.trace_id,
            "span_id": "0" * 16,
            "parent_id": None,
            "ts": 0.0,
            "wall_s": 0.0,
            "status": "ok",
        }
        t0 = clock.perf()
        for _ in range(EMIT_SAMPLES):
            writer.emit(record)
        return (clock.perf() - t0) / EMIT_SAMPLES


def _run_quick_traced() -> tuple:
    """(wall seconds, trace record count) of a traced quick run."""
    from repro.experiments.runner import main
    from repro.obs import clock, read_trace

    with tempfile.TemporaryDirectory() as tmp:
        out_dir = os.path.join(tmp, "results")
        cache_dir = os.path.join(tmp, "cache")
        argv = [
            "figure2", "table1", "--quick", "--no-cache",
            "--out", out_dir, "--cache-dir", cache_dir,
        ]
        t0 = clock.perf()
        with contextlib.redirect_stdout(io.StringIO()):
            code = main(argv)
        wall = clock.perf() - t0
        if code != 0:
            raise SystemExit(f"quick run failed with exit code {code}")
        trace = read_trace(os.path.join(out_dir, "latest", "trace.jsonl"))
        return wall, len(trace.records)


def main() -> int:
    per_record_s = _measure_per_record_s()
    quick_wall_s, records = _run_quick_traced()
    overhead_est = records * per_record_s / quick_wall_s
    doc = {
        "quick_wall_s": round(quick_wall_s, 4),
        "trace_records": records,
        "per_record_s": round(per_record_s, 7),
        "overhead_est": round(overhead_est, 5),
        "budget": BUDGET,
        "within_budget": overhead_est < BUDGET,
    }
    with open(OUT_PATH, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(doc, indent=2, sort_keys=True))
    if not doc["within_budget"]:
        print(
            f"FAIL: tracing overhead {overhead_est:.1%} exceeds the {BUDGET:.0%} budget",
            file=sys.stderr,
        )
        return 1
    print(f"ok: tracing overhead bounded at {overhead_est:.2%} of the quick suite (< {BUDGET:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
