"""Benchmarks of the runtime engine: cold vs. warm cache, serial vs. parallel.

The headline number is the cache speedup: a second ``repro-experiments``
invocation with unchanged inputs must be at least 5x faster than the
cold run that populated the cache (in practice it is 10-50x — a warm
run is a fingerprint walk plus one JSON read per experiment).
"""

import time

import pytest

from repro.experiments.runner import main

pytestmark = pytest.mark.benchmark(group="runtime")

#: Experiments heavy enough to dominate engine overhead, light enough to bench.
_SUBSET = ["figure1", "stability"]


def _argv(tmp_path, *extra):
    return [
        *_SUBSET,
        "--quick",
        "--cache-dir",
        str(tmp_path / "cache"),
        *extra,
    ]


class TestResultCache:
    def test_bench_warm_run_at_least_5x_faster_than_cold(
        self, benchmark, tmp_path, capsys
    ):
        argv = _argv(tmp_path)
        start = time.perf_counter()
        assert main(argv) == 0
        cold_s = time.perf_counter() - start

        start = time.perf_counter()
        assert benchmark.pedantic(main, args=(argv,), rounds=1, iterations=1) == 0
        warm_s = time.perf_counter() - start
        capsys.readouterr()

        benchmark.extra_info["cold_s"] = round(cold_s, 3)
        benchmark.extra_info["warm_s"] = round(warm_s, 3)
        benchmark.extra_info["speedup"] = round(cold_s / warm_s, 1)
        assert cold_s / warm_s >= 5.0, (
            f"cache speedup only {cold_s / warm_s:.1f}x (cold {cold_s:.2f}s, warm {warm_s:.2f}s)"
        )


class TestParallelRun:
    def test_bench_quick_subset_with_jobs_4(self, run_once, tmp_path, capsys):
        """Record the cold parallel wall time (no speedup assertion: worker
        contention on small CI boxes makes one unreliable)."""
        argv = _argv(tmp_path, "--no-cache", "--jobs", "4")
        assert run_once(main, argv) == 0
        capsys.readouterr()
