"""Benchmarks regenerating the paper's Tables 1, 2 and 3.

Each bench times the full regeneration (synthesis + extraction /
estimation) and asserts the table's headline shape so a regression in
either speed or fidelity is caught.
"""

import pytest

from repro.experiments import run_table1, run_table2, run_table3

pytestmark = pytest.mark.benchmark(group="tables")


class TestTable1:
    def test_bench_table1(self, run_once):
        """Table 1: synthesize the ten production logs and re-extract all
        published characteristics."""
        result = run_once(run_table1, n_jobs=10000, seed=0)
        # Every comparable cell within 30% of the published value.
        assert result.worst_cells(tolerance=0.3) == []


class TestTable2:
    def test_bench_table2(self, run_once):
        """Table 2: the eight six-month sub-logs of LANL and SDSC."""
        result = run_once(run_table2, n_jobs=8000, seed=0)
        assert result.worst_cells(tolerance=0.3) == []
        # The L3 regime change (Rm jumps to 643s) is present in the
        # synthesized sub-logs too.
        assert result.measured["L3"].runtime_median > 4 * result.measured["L1"].runtime_median


class TestTable3:
    def test_bench_table3(self, run_once):
        """Table 3: 3 Hurst estimators x 4 series x 15 workloads."""
        result = run_once(run_table3, n_jobs=10000, seed=0)
        # The paper's discriminating finding.
        assert result.production_mean > result.model_mean + 0.03
        assert result.production_mean > 0.58
        assert result.model_mean < 0.62
        # Cell-level agreement with the published estimates.
        assert result.mean_absolute_deviation() < 0.15
