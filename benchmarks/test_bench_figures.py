"""Benchmarks regenerating the paper's Figures 1-5.

Each bench reruns the corresponding Co-plot analysis end to end and
asserts the figure's qualitative reading (cluster structure, who matches
whom, production/model separation).
"""

import pytest

from repro.experiments import (
    run_figure1,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
)

pytestmark = pytest.mark.benchmark(group="figures")


def assert_all_claims(result):
    claims = result.claims() if callable(getattr(result, "claims")) else result.claims
    failed = [c.render() for c in claims if not c.holds]
    assert not failed, "\n".join(failed)


class TestFigure1:
    def test_bench_figure1(self, run_once):
        """Figure 1: Co-plot of all production workloads; Θ≈0.07,
        avg r≈0.88, four variable clusters, batch outliers."""
        result = run_once(run_figure1)
        assert_all_claims(result)
        assert result.coplot.alienation <= 0.12


class TestFigure2:
    def test_bench_figure2(self, run_once):
        """Figure 2: without batch outliers; third cluster dissolves,
        interactive workloads form the only observation cluster."""
        result = run_once(run_figure2)
        assert_all_claims(result)


class TestFigure3:
    def test_bench_figure3(self, run_once):
        """Figure 3: workloads over time; SDSC stationary, LANL year 2
        outliers."""
        result = run_once(run_figure3)
        assert_all_claims(result)


class TestFigure4:
    def test_bench_figure4(self, run_once):
        """Figure 4: production vs models; Lublin central (matching LLNL),
        Downey/Feitelson on interactive+NASA, Jann on CTC/KTH."""
        result = run_once(run_figure4, n_jobs=8000, seed=0)
        assert_all_claims(result)


class TestFigure5:
    def test_bench_figure5(self, run_once):
        """Figure 5: Co-plot of the Hurst-estimate matrix; every arrow
        points at the production side."""
        result = run_once(run_figure5, n_jobs=8000, seed=0)
        assert_all_claims(result)
