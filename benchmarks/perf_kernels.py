"""Vectorized-kernel speedup gate: ``make perf-bench``.

Times each rewritten hot kernel against its retained ``*_reference``
implementation on fixed synthetic inputs and writes the verdict to
``BENCH_perf.json``.  Five kernels carry hard floors (the tentpole claims
of the two vectorization PRs):

* SWF ingest (``read_swf`` vs ``read_swf_reference``) on an
  archive-shaped 120k-job log — must be **>= 5x** faster;
* SMACOF at ``n_init=8`` (``engine="batched"`` vs ``"reference"``) —
  must be **>= 3x** faster;
* Lublin generation at 1M jobs (``engine="batched"`` vs
  ``"reference"``) — must be **>= 10x** faster;
* bootstrap stability at ``n_boot=20`` on a paper-shaped matrix
  (``engine="batched"`` vs ``"reference"``) — must be **>= 3x** faster;
* the FCFS simulator loop at 100k jobs (``simulate`` vs
  ``simulate_reference``) — must be **>= 2x** faster.

The windowed R/S kernel and the bulk SWF renderer are recorded
informationally (their speedups are real but size-dependent, so they
are not gated).  Timings are best-of-N to shrug off scheduler noise;
the *ratio* of two best-of-N timings is far more stable than either
absolute number on shared CI hardware.

Run directly (``python benchmarks/perf_kernels.py``); exits nonzero
when a gated kernel misses its floor.  ``--quick`` shrinks the inputs
for a fast smoke run (no gating, BENCH_perf.json not written).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from typing import Callable, Dict

import numpy as np

OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_perf.json"
)

#: Hard speedup floors, asserted here and in benchmarks/test_bench_kernels.py.
TARGETS = {
    "swf_ingest": 5.0,
    "smacof_n_init8": 3.0,
    "lublin_generate": 10.0,
    "bootstrap_stability": 3.0,
    "simulate_fcfs": 2.0,
}

SWF_JOBS = 120_000
SMACOF_POINTS = 30
RS_SERIES = 4_000
LUBLIN_JOBS = 1_000_000
BOOT_SHAPE = (14, 40)  # observations x variables, the paper's regime
BOOT_N = 20
SIM_JOBS = 100_000


def synthetic_workload(n: int = SWF_JOBS, seed: int = 7):
    """An archive-shaped workload: integer times, sparse avg_cpu decimals.

    Field conventions copy the Parallel Workloads Archive: whole-second
    times, power-of-two node counts, ``-1`` for unrecorded fields, and
    ``avg_cpu_time`` as the one column that carries decimals — exactly
    the shape the integer-first fast scan is built for.
    """
    from repro.workload import MachineInfo, Workload

    rng = np.random.default_rng(seed)
    procs = 2 ** rng.integers(0, 9, n)
    run_time = rng.integers(1, 86_400, n).astype(float)
    avg_cpu = np.round(rng.random(n) * 100, 2)
    avg_cpu[rng.random(n) < 0.15] = -1.0
    columns = {
        "job_id": np.arange(1, n + 1),
        "submit_time": np.cumsum(rng.integers(0, 20, n)).astype(float),
        "wait_time": rng.integers(0, 3_600, n).astype(float),
        "run_time": run_time,
        "used_procs": procs,
        "avg_cpu_time": avg_cpu,
        "used_memory": np.full(n, -1.0),
        "requested_procs": procs,
        "requested_time": run_time + rng.integers(0, 600, n),
        "requested_memory": np.full(n, -1.0),
        "status": (rng.random(n) >= 0.05).astype(np.int64),
        "user_id": rng.integers(1, 400, n),
        "group_id": rng.integers(1, 30, n),
        "executable_id": rng.integers(1, 60, n),
        "queue": rng.integers(0, 5, n),
        "partition": np.full(n, -1),
        "preceding_job": np.full(n, -1),
        "think_time": np.full(n, -1.0),
    }
    machine = MachineInfo(name="synthetic-cluster", processors=256)
    return Workload(columns, machine, name="synthetic")


def _measure_pair(
    fast: Callable[[], object], reference: Callable[[], object], rounds: int
) -> Dict[str, float]:
    """Best-of-N for both kernels, with the rounds interleaved.

    Alternating fast/reference within each round means a mid-measurement
    frequency or load shift hits both sides, keeping the *ratio* honest
    even when the absolute timings wander.
    """
    from repro.obs import clock

    fast()  # warm caches and lazy imports outside the timed region
    fast_s = ref_s = float("inf")
    for _ in range(rounds):
        t0 = clock.perf()
        fast()
        fast_s = min(fast_s, clock.perf() - t0)
        t0 = clock.perf()
        reference()
        ref_s = min(ref_s, clock.perf() - t0)
    return {"reference_s": ref_s, "fast_s": fast_s, "speedup": ref_s / fast_s}


def measure_swf_ingest(n_jobs: int = SWF_JOBS, *, reps: int = 3) -> Dict[str, float]:
    from repro.workload.swf import read_swf, read_swf_reference, write_swf

    workload = synthetic_workload(n_jobs)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "synthetic.swf")
        write_swf(workload, path)
        return _measure_pair(
            lambda: read_swf(path), lambda: read_swf_reference(path), reps
        )


def measure_smacof(n_points: int = SMACOF_POINTS, *, reps: int = 2) -> Dict[str, float]:
    from repro.coplot.mds.base import pairwise_euclidean
    from repro.coplot.mds.smacof import smacof

    d = pairwise_euclidean(np.random.default_rng(0).normal(size=(n_points, 5)))
    return _measure_pair(
        lambda: smacof(d, seed=1, n_init=8, engine="batched"),
        lambda: smacof(d, seed=1, n_init=8, engine="reference"),
        reps,
    )


def measure_rs_pox(n: int = RS_SERIES, *, reps: int = 5) -> Dict[str, float]:
    from repro.selfsim.rs_analysis import rs_pox_points, rs_pox_points_reference

    x = np.cumsum(np.random.default_rng(3).standard_normal(n))
    return _measure_pair(
        lambda: rs_pox_points(x), lambda: rs_pox_points_reference(x), reps
    )


def measure_render(n_jobs: int = SWF_JOBS, *, reps: int = 3) -> Dict[str, float]:
    from repro.workload.swf import render_swf_text, render_swf_text_reference

    workload = synthetic_workload(n_jobs)
    return _measure_pair(
        lambda: render_swf_text(workload),
        lambda: render_swf_text_reference(workload),
        reps,
    )


def measure_lublin(n_jobs: int = LUBLIN_JOBS, *, reps: int = 3) -> Dict[str, float]:
    from repro.models import LublinModel

    model = LublinModel()
    return _measure_pair(
        lambda: model.generate(n_jobs, seed=11, engine="batched"),
        lambda: model.generate(n_jobs, seed=11, engine="reference"),
        reps,
    )


def measure_bootstrap(
    n_boot: int = BOOT_N, shape=BOOT_SHAPE, *, reps: int = 3
) -> Dict[str, float]:
    from repro.coplot.extend import bootstrap_stability

    rng = np.random.default_rng(7)
    y = rng.normal(size=shape) + np.linspace(0, 3, shape[1])
    return _measure_pair(
        lambda: bootstrap_stability(y, n_boot=n_boot, seed=0, engine="batched"),
        lambda: bootstrap_stability(y, n_boot=n_boot, seed=0, engine="reference"),
        reps,
    )


def simulator_workload(n: int = SIM_JOBS, seed: int = 0, *, machine_procs: int = 512,
                       load: float = 0.94, mean_rt: float = 400.0):
    """A near-saturation FCFS stream: queues stay long enough that the
    reference loop's per-event queue rebuild costs dominate."""
    from repro.workload import MachineInfo, Workload

    rng = np.random.default_rng(seed)
    run_time = rng.exponential(mean_rt, n)
    procs = 2 ** rng.integers(0, 6, n)
    rate = load * machine_procs / (mean_rt * procs.mean())
    submit = np.cumsum(rng.exponential(1.0 / rate, n))
    machine = MachineInfo(name="sim-bench", processors=machine_procs)
    return Workload.from_arrays(
        machine=machine,
        name="sim-bench",
        job_id=np.arange(1, n + 1),
        submit_time=submit,
        run_time=run_time,
        used_procs=procs.astype(np.int64),
    )


def measure_simulate_fcfs(n_jobs: int = SIM_JOBS, *, reps: int = 3) -> Dict[str, float]:
    from repro.scheduler import FcfsScheduler, UnlimitedAllocator, simulate, simulate_reference

    workload = simulator_workload(n_jobs)
    return _measure_pair(
        lambda: simulate(workload, FcfsScheduler(), UnlimitedAllocator()),
        lambda: simulate_reference(workload, FcfsScheduler(), UnlimitedAllocator()),
        reps,
    )


def main(argv=None) -> int:
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    )
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small inputs, no gate, no BENCH_perf.json"
    )
    args = parser.parse_args(argv)

    if args.quick:
        results = {
            "swf_ingest": measure_swf_ingest(5_000, reps=1),
            "smacof_n_init8": measure_smacof(12, reps=1),
            "rs_pox": measure_rs_pox(500, reps=1),
            "swf_render": measure_render(5_000, reps=1),
            "lublin_generate": measure_lublin(20_000, reps=1),
            "bootstrap_stability": measure_bootstrap(4, (10, 12), reps=1),
            "simulate_fcfs": measure_simulate_fcfs(5_000, reps=1),
        }
    else:
        results = {
            "swf_ingest": measure_swf_ingest(),
            "smacof_n_init8": measure_smacof(),
            "rs_pox": measure_rs_pox(),
            "swf_render": measure_render(),
            "lublin_generate": measure_lublin(),
            "bootstrap_stability": measure_bootstrap(),
            "simulate_fcfs": measure_simulate_fcfs(),
        }

    failed = []
    for kernel, stats in results.items():
        target = TARGETS.get(kernel)
        stats["target"] = target
        stats["gated"] = target is not None and not args.quick
        stats["pass"] = target is None or stats["speedup"] >= target or args.quick
        floor = f">= {target:.0f}x required" if stats["gated"] else "informational"
        verdict = "ok" if stats["pass"] else "FAIL"
        print(
            f"{kernel:16s} ref {stats['reference_s']:8.4f}s  "
            f"fast {stats['fast_s']:8.4f}s  {stats['speedup']:5.2f}x  ({floor}) {verdict}"
        )
        if not stats["pass"]:
            failed.append(kernel)

    if not args.quick:
        payload = {
            "suite": "vectorized-kernels",
            "jobs": SWF_JOBS,
            "smacof_points": SMACOF_POINTS,
            "lublin_jobs": LUBLIN_JOBS,
            "bootstrap": {"n_boot": BOOT_N, "shape": list(BOOT_SHAPE)},
            "sim_jobs": SIM_JOBS,
            "targets": TARGETS,
            "results": results,
            "ok": not failed,
        }
        with open(OUT_PATH, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"Written to {OUT_PATH}")

    if failed:
        print(f"speedup floor missed: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
