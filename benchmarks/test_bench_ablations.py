"""Ablation benchmarks for the design choices DESIGN.md §6 calls out.

Each ablation re-runs a Figure 1-style analysis with one knob flipped and
checks the paper's implicit justification: the published choice is at
least as good as the alternative on its own criterion, and the map's
qualitative structure is (or is not) robust to the change.
"""

import numpy as np
import pytest

from repro.coplot import Coplot, procrustes_disparity
from repro.experiments.common import FIGURE1_SIGNS, production_matrix
from repro.workload.variables import observation_matrix
from repro.archive.targets import PRODUCTION_NAMES, TABLE1

pytestmark = pytest.mark.benchmark(group="ablations")


def _figure1_fit(**kwargs):
    y, labels = production_matrix(FIGURE1_SIGNS)
    return Coplot(**kwargs).fit(y, labels=labels, signs=list(FIGURE1_SIGNS))


class TestDissimilarityMetric:
    def test_bench_city_block_vs_euclidean(self, run_once):
        """The paper chose city-block distances (Eq. 2).  Both metrics must
        produce essentially the same map here (the choice is one of
        robustness, not of structure), and city-block must not be worse."""

        def run():
            return _figure1_fit(metric="cityblock"), _figure1_fit(metric="euclidean")

        city, euclid = run_once(run)
        assert city.alienation <= euclid.alienation + 0.05
        # Same qualitative map up to rotation/reflection/scale.
        assert procrustes_disparity(city.coords, euclid.coords) < 0.25


class TestMdsTransform:
    def test_bench_rank_image_vs_isotonic_vs_metric(self, run_once):
        """Guttman's rank-image (SSA) vs Kruskal isotonic vs metric SMACOF
        on the Figure 1 data: the two nonmetric flavours agree, and both
        fit at least as well as the metric variant (they optimize order,
        which is what Θ measures)."""

        def run():
            return {
                t: _figure1_fit(transform=t)
                for t in ("rank-image", "isotonic", "metric")
            }

        results = run_once(run)
        assert results["rank-image"].alienation <= results["metric"].alienation + 1e-6
        assert results["isotonic"].alienation <= results["metric"].alienation + 1e-6
        assert (
            procrustes_disparity(
                results["rank-image"].coords, results["isotonic"].coords
            )
            < 0.2
        )


class TestIntervalWidth:
    def test_bench_90_vs_50_interval(self, run_once):
        """Section 3: "the 50% interval was also tested, and gave virtually
        the same results."  Rebuild Figure 1's variable matrix with 50%
        intervals from the synthesized logs and compare the maps."""
        from repro.archive import synthesize_all
        from repro.workload.statistics import compute_statistics

        def run():
            logs = synthesize_all(n_jobs=6000, seed=0)
            maps = {}
            for coverage in (0.9, 0.5):
                stats = [
                    compute_statistics(logs[n], coverage=coverage)
                    for n in PRODUCTION_NAMES
                ]
                y, labels = observation_matrix(stats, FIGURE1_SIGNS)
                maps[coverage] = Coplot().fit(
                    y, labels=labels, signs=list(FIGURE1_SIGNS)
                )
            return maps

        maps = run_once(run)
        assert maps[0.9].alienation < 0.15
        assert maps[0.5].alienation < 0.15
        assert procrustes_disparity(maps[0.9].coords, maps[0.5].coords) < 0.3


class TestOrderMomentsVsMeanCV:
    def test_bench_tail_sensitivity(self, run_once):
        """Section 3's argument for order moments: removing the 0.1%
        'taily' jobs barely moves the median/interval but shifts the mean
        and CV dramatically.  Demonstrated on the uncapped CTC runtime
        marginal — the raw heavy-tailed distribution real logs exhibit
        before any administrative limit truncates it."""
        from repro.archive.calibrate import solve_lognormal_marginal
        from repro.stats.percentiles import interval90

        def run():
            dist = solve_lognormal_marginal(960.0, 57216.0)  # CTC runtimes
            run_times = np.sort(dist.sample(100000, seed=0))
            k = max(int(0.001 * len(run_times)), 1)
            trimmed = run_times[:-k]
            return {
                "median_shift": abs(np.median(trimmed) / np.median(run_times) - 1),
                "interval_shift": abs(interval90(trimmed) / interval90(run_times) - 1),
                "mean_shift": abs(trimmed.mean() / run_times.mean() - 1),
                "cv_shift": abs(
                    (trimmed.std() / trimmed.mean())
                    / (run_times.std() / run_times.mean())
                    - 1
                ),
            }

        shifts = run_once(run)
        # Order moments barely move...
        assert shifts["median_shift"] < 0.01
        assert shifts["interval_shift"] < 0.05
        # ...while the mean loses several percent and the CV tens of
        # percent (the paper quotes 5% and 40%).
        assert shifts["mean_shift"] > 0.03
        assert shifts["cv_shift"] > 0.15


class TestSeriesViewForHurst:
    def test_bench_job_order_vs_binned(self, run_once):
        """Job-order series (the paper's view) vs time-binned arrival
        counts: both must flag the same self-similar workload."""
        from repro.archive import synthesize_workload
        from repro.selfsim import binned_counts, hurst_summary, workload_series

        def run():
            w = synthesize_workload("LANL", n_jobs=16000, seed=0)
            job_order = np.mean(
                list(hurst_summary(workload_series(w, "interarrival")).values())
            )
            binned = np.mean(
                list(hurst_summary(binned_counts(w, bin_seconds=3600.0)).values())
            )
            return job_order, binned

        job_order, binned = run_once(run)
        assert job_order > 0.55
        assert binned > 0.55


class TestHurstGainCompensation:
    def test_bench_hurst_gain(self, run_once):
        """The synthesizer boosts its fGn input Hurst by HURST_GAIN to
        compensate the heavy-tail rank transform's attenuation.  Ablation:
        with gain 1.0 the measured H undershoots its target; with the
        shipped gain it lands within tolerance."""
        import numpy as np

        import repro.archive.synthesize as synth
        from repro.archive import synthesize_workload
        from repro.archive.targets import hurst_target
        from repro.selfsim import hurst_summary, workload_series

        def measure(gain: float) -> float:
            original = synth.HURST_GAIN
            synth.HURST_GAIN = gain
            try:
                w = synthesize_workload("LANL", n_jobs=12000, seed=5)
            finally:
                synth.HURST_GAIN = original
            return float(
                np.mean(list(hurst_summary(workload_series(w, "run_time")).values()))
            )

        def run():
            return measure(1.0), measure(synth.HURST_GAIN)

        uncompensated, compensated = run_once(run)
        target = hurst_target("LANL", "run_time")  # 0.80
        # Without the gain the transform attenuates the dependence...
        assert uncompensated < target - 0.04
        # ...with it, the measured level lands close to the published one.
        assert abs(compensated - target) < abs(uncompensated - target)
        assert abs(compensated - target) < 0.08
