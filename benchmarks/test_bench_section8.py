"""Benchmarks for the Section 8 analyses: the parameterization search and
the load-alteration ablation."""

import pytest

from repro.experiments import run_load_alteration, run_parameterization

pytestmark = pytest.mark.benchmark(group="section8")


class TestParameterization:
    def test_bench_parameterization(self, run_once):
        """Exhaustive 3-subset search over the candidate variables; the
        paper's triple {AL, Pm, Im} must score excellently."""
        result = run_once(run_parameterization)
        assert result.paper_triple_score.alienation <= 0.10
        assert result.paper_triple_score.average_correlation >= 0.85
        assert result.best.average_correlation >= result.paper_triple_score.average_correlation - 1e-9


class TestLoadAlteration:
    def test_bench_load_alteration(self, run_once):
        """The three naive load-raising techniques and their side effects."""
        result = run_once(run_load_alteration, n_jobs=8000, seed=0)
        # All techniques do raise the load...
        for load in result.technique_loads.values():
            assert load > result.baseline_load
        # ...but condensing inter-arrivals moves Im against the observed
        # positive load/Im correlation (the paper's contradiction).
        assert result.observed_correlations["load vs inter-arrival median (RL, Im)"] > 0
        assert result.technique_effects["condense inter-arrivals (x1/f)"]["Im"] < 1.0
