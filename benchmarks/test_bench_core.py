"""Micro-benchmarks of the core primitives (performance tracking).

These benchmark the hot paths a downstream user exercises most: the MDS
solve, arrow fitting, fGn generation, the Hurst estimators, the log
synthesizer and the model generators.  They use pytest-benchmark's
default multi-round timing (the operations are fast).
"""

import numpy as np
import pytest

from repro.archive import synthesize_workload
from repro.coplot import Coplot, pairwise_dissimilarity, smallest_space_analysis
from repro.coplot.mds.base import pairwise_euclidean
from repro.models import LublinModel
from repro.selfsim import estimate_hurst, fgn

pytestmark = pytest.mark.benchmark(group="core")


@pytest.fixture(scope="module")
def figure1_matrix():
    from repro.experiments.common import FIGURE1_SIGNS, production_matrix

    y, labels = production_matrix(FIGURE1_SIGNS)
    return y, labels, list(FIGURE1_SIGNS)


class TestCoplotCore:
    def test_bench_full_coplot_fit(self, benchmark, figure1_matrix):
        y, labels, signs = figure1_matrix
        result = benchmark(lambda: Coplot().fit(y, labels=labels, signs=signs))
        assert result.alienation < 0.15

    def test_bench_ssa_solve(self, benchmark):
        rng = np.random.default_rng(0)
        d = pairwise_euclidean(rng.normal(size=(18, 5)))
        result = benchmark(lambda: smallest_space_analysis(d, n_init=4))
        assert result.coords.shape == (18, 2)

    def test_bench_dissimilarity_matrix(self, benchmark):
        rng = np.random.default_rng(1)
        z = rng.normal(size=(100, 20))
        s = benchmark(lambda: pairwise_dissimilarity(z))
        assert s.shape == (100, 100)


class TestSelfsimCore:
    def test_bench_fgn_generation(self, benchmark):
        x = benchmark(lambda: fgn(2**15, 0.8, seed=0))
        assert x.shape == (2**15,)

    @pytest.mark.parametrize("method", ["rs", "variance", "periodogram", "whittle"])
    def test_bench_hurst_estimator(self, benchmark, method):
        x = fgn(2**14, 0.75, seed=1)
        est = benchmark(lambda: estimate_hurst(x, method))
        assert 0.5 < est.h < 1.0


class TestGenerationCore:
    def test_bench_synthesize_log(self, benchmark):
        w = benchmark(lambda: synthesize_workload("CTC", n_jobs=20000, seed=0))
        assert len(w) == 20000

    def test_bench_lublin_generate(self, benchmark):
        model = LublinModel()
        w = benchmark(lambda: model.generate(10000, seed=0))
        assert len(w) == 10000
