"""Vectorized-kernel benchmarks and the hard speedup floors.

Two layers: pytest-benchmark timings of the fast kernels themselves
(tracked across runs like every other bench module), and the gated
speedup assertions — the ≥5× SWF-ingest and ≥3× SMACOF floors the
vectorization PR claims, measured against the retained ``*_reference``
implementations exactly as ``make perf-bench`` measures them.
"""

import numpy as np
import pytest

from perf_kernels import (
    TARGETS,
    measure_rs_pox,
    measure_smacof,
    measure_swf_ingest,
    synthetic_workload,
)

pytestmark = pytest.mark.benchmark(group="kernels")


class TestKernelSpeedupFloors:
    def test_swf_ingest_speedup_floor(self):
        stats = measure_swf_ingest(reps=3)
        assert stats["speedup"] >= TARGETS["swf_ingest"], stats

    def test_smacof_speedup_floor(self):
        stats = measure_smacof(reps=2)
        assert stats["speedup"] >= TARGETS["smacof_n_init8"], stats

    def test_rs_pox_is_faster(self):
        # Informational kernel: no hard floor, but it must never regress
        # below the reference loop.
        stats = measure_rs_pox(reps=5)
        assert stats["speedup"] >= 1.5, stats


class TestKernelBench:
    def test_bench_swf_parse_fast(self, benchmark, tmp_path):
        from repro.workload.swf import read_swf, write_swf

        path = tmp_path / "synthetic.swf"
        write_swf(synthetic_workload(30_000), str(path))
        w = benchmark(lambda: read_swf(str(path)))
        assert len(w) == 30_000

    def test_bench_swf_render_fast(self, benchmark):
        from repro.workload.swf import render_swf_text

        w = synthetic_workload(30_000)
        text = benchmark(lambda: render_swf_text(w))
        assert text.count("\n") >= 30_000

    def test_bench_smacof_batched(self, benchmark):
        from repro.coplot.mds.base import pairwise_euclidean
        from repro.coplot.mds.smacof import smacof

        d = pairwise_euclidean(np.random.default_rng(0).normal(size=(16, 5)))
        result = benchmark(lambda: smacof(d, seed=1, n_init=8, engine="batched"))
        assert result.coords.shape == (16, 2)

    def test_bench_rs_pox_windowed(self, benchmark):
        from repro.selfsim.rs_analysis import rs_pox_points

        x = np.cumsum(np.random.default_rng(3).standard_normal(4_000))
        log_ns, log_rs = benchmark(lambda: rs_pox_points(x))
        assert log_ns.size == log_rs.size > 0
