"""Vectorized-kernel benchmarks and the hard speedup floors.

Two layers: pytest-benchmark timings of the fast kernels themselves
(tracked across runs like every other bench module), and the gated
speedup assertions — the ≥5× SWF-ingest, ≥3× SMACOF, ≥10× Lublin
generation, ≥3× bootstrap-stability, and ≥2× FCFS-simulation floors,
measured against the retained ``*_reference`` implementations exactly
as ``make perf-bench`` measures them (the traffic-scale kernels at
reduced sizes so the suite stays fast; ``make perf-bench`` runs the
full 1M-job / 100k-job workloads).
"""

import numpy as np
import pytest

from perf_kernels import (
    TARGETS,
    measure_bootstrap,
    measure_lublin,
    measure_rs_pox,
    measure_simulate_fcfs,
    measure_smacof,
    measure_swf_ingest,
    simulator_workload,
    synthetic_workload,
)

pytestmark = pytest.mark.benchmark(group="kernels")


class TestKernelSpeedupFloors:
    def test_swf_ingest_speedup_floor(self):
        stats = measure_swf_ingest(reps=3)
        assert stats["speedup"] >= TARGETS["swf_ingest"], stats

    def test_smacof_speedup_floor(self):
        stats = measure_smacof(reps=2)
        assert stats["speedup"] >= TARGETS["smacof_n_init8"], stats

    def test_rs_pox_is_faster(self):
        # Informational kernel: no hard floor, but it must never regress
        # below the reference loop.
        stats = measure_rs_pox(reps=5)
        assert stats["speedup"] >= 1.5, stats

    def test_lublin_generate_speedup_floor(self):
        stats = measure_lublin(300_000, reps=1)
        assert stats["speedup"] >= TARGETS["lublin_generate"], stats

    def test_bootstrap_stability_speedup_floor(self):
        stats = measure_bootstrap(10, (14, 40), reps=1)
        assert stats["speedup"] >= TARGETS["bootstrap_stability"], stats

    def test_simulate_fcfs_speedup_floor(self):
        stats = measure_simulate_fcfs(60_000, reps=1)
        assert stats["speedup"] >= TARGETS["simulate_fcfs"], stats


class TestKernelBench:
    def test_bench_swf_parse_fast(self, benchmark, tmp_path):
        from repro.workload.swf import read_swf, write_swf

        path = tmp_path / "synthetic.swf"
        write_swf(synthetic_workload(30_000), str(path))
        w = benchmark(lambda: read_swf(str(path)))
        assert len(w) == 30_000

    def test_bench_swf_render_fast(self, benchmark):
        from repro.workload.swf import render_swf_text

        w = synthetic_workload(30_000)
        text = benchmark(lambda: render_swf_text(w))
        assert text.count("\n") >= 30_000

    def test_bench_smacof_batched(self, benchmark):
        from repro.coplot.mds.base import pairwise_euclidean
        from repro.coplot.mds.smacof import smacof

        d = pairwise_euclidean(np.random.default_rng(0).normal(size=(16, 5)))
        result = benchmark(lambda: smacof(d, seed=1, n_init=8, engine="batched"))
        assert result.coords.shape == (16, 2)

    def test_bench_rs_pox_windowed(self, benchmark):
        from repro.selfsim.rs_analysis import rs_pox_points

        x = np.cumsum(np.random.default_rng(3).standard_normal(4_000))
        log_ns, log_rs = benchmark(lambda: rs_pox_points(x))
        assert log_ns.size == log_rs.size > 0

    def test_bench_lublin_batched(self, benchmark):
        from repro.models import LublinModel

        model = LublinModel()
        w = benchmark(lambda: model.generate(50_000, seed=11, engine="batched"))
        assert len(w) == 50_000

    def test_bench_bootstrap_batched(self, benchmark):
        from repro.coplot.extend import bootstrap_stability

        rng = np.random.default_rng(7)
        y = rng.normal(size=(14, 40)) + np.linspace(0, 3, 40)
        result = benchmark(
            lambda: bootstrap_stability(y, n_boot=5, seed=0, engine="batched")
        )
        assert result.positional_spread.shape == (14,)

    def test_bench_simulate_fcfs_fast(self, benchmark):
        from repro.scheduler import FcfsScheduler, UnlimitedAllocator, simulate

        w = simulator_workload(20_000)
        result = benchmark(
            lambda: simulate(w, FcfsScheduler(), UnlimitedAllocator())
        )
        assert result.submit.size > 0
