"""Benchmarks for the extension systems: the parametric model, the
scheduler simulator, and the self-similarity impact experiment."""

import pytest

from repro.experiments import run_parametric_model, run_scheduling

pytestmark = pytest.mark.benchmark(group="extensions")


class TestParametricModel:
    def test_bench_paramodel(self, run_once):
        """Fit + leave-one-out + generate + map the §8 parametric model."""
        result = run_once(run_parametric_model, n_jobs=8000, seed=0)
        failed = [c.render() for c in result.claims if not c.holds]
        assert not failed, "\n".join(failed)


class TestScheduling:
    def test_bench_scheduling(self, run_once):
        """The self-similarity impact study plus the flexibility sweeps."""
        result = run_once(run_scheduling, n_jobs=4000, seed=0)
        failed = [c.render() for c in result.claims if not c.holds]
        assert not failed, "\n".join(failed)
        # The headline number: the burst penalty factor.
        penalty = result.selfsim_metrics.mean_wait / max(
            result.shuffled_metrics.mean_wait, 1.0
        )
        assert penalty > 1.3


class TestSimulatorThroughput:
    def test_bench_easy_simulation(self, benchmark):
        """Raw simulator throughput: EASY over a 4000-job stream."""
        from repro.archive import synthesize_workload
        from repro.experiments.load_alteration import scale_workload
        from repro.scheduler import EasyBackfillScheduler, simulate

        w = scale_workload(
            synthesize_workload("KTH", n_jobs=4000, seed=0),
            field="interarrival",
            factor=1.5,
        )
        result = benchmark(lambda: simulate(w, EasyBackfillScheduler()))
        assert result.submit.shape[0] == 4000


class TestUserSessionModel:
    def test_bench_usersession_generation(self, benchmark):
        """Closed-loop session generation throughput + its self-similarity
        by-product (heavy-tailed sessions -> LRD arrival counts)."""
        from repro.models import UserSessionModel

        model = UserSessionModel(session_tail=1.2)
        w = benchmark(lambda: model.generate(20000, seed=1))
        assert len(w) == 20000


class TestAnomalyAudit:
    def test_bench_audit(self, benchmark):
        """Full Section 1 integrity audit of a 20k-job log."""
        from repro.archive import synthesize_workload
        from repro.workload import audit_workload

        w = synthesize_workload("SDSC", n_jobs=20000, seed=0)
        report = benchmark(lambda: audit_workload(w))
        assert report.limits.total == 0


class TestAlienationScaling:
    def test_bench_alienation_large(self, benchmark):
        """Guttman mu over 7140 pairs (a 120-observation map) through the
        chunked accumulation path."""
        import numpy as np

        from repro.coplot import monotonicity_coefficient
        from repro.coplot.mds.base import pairwise_euclidean, upper_triangle

        rng = np.random.default_rng(0)
        d = upper_triangle(pairwise_euclidean(rng.normal(size=(120, 4))))
        s = d**1.3
        mu = benchmark(lambda: monotonicity_coefficient(s, d))
        assert mu == 1.0


class TestModelValidation:
    def test_bench_rank_models(self, run_once):
        """Rank all five models against a CTC-like trace (the Figure 4
        verdict as an API): Jann, fitted to CTC, must win."""
        from repro.archive import synthesize_workload
        from repro.models import rank_models

        def run():
            ctc = synthesize_workload("CTC", n_jobs=8000, seed=0)
            return rank_models(ctc, n_jobs=8000, seed=0)

        ranked = run_once(run)
        assert ranked[0].model_name == "Jann"
        assert ranked[0].score() < ranked[-1].score()
