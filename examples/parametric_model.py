#!/usr/bin/env python
"""Model a machine you haven't built yet — the Section 8 workflow.

The paper: "a general model of parallel workloads will accept these three
parameters as input" — the processor-allocation flexibility and the
medians of parallelism and inter-arrival time, all knowable (or at least
estimable) for a *future* system.  This example plays system architect:

1. describe the planned machine by (AL, Pm, Im);
2. let the parametric model predict the rest of its workload profile
   from the Table 1 correlations;
3. generate a self-similar job stream for it;
4. feed that stream to the scheduler simulator to size the machine's
   expected waiting times.

Run:  python examples/parametric_model.py [AL] [Pm] [Im] [procs]
      e.g.  python examples/parametric_model.py 3 16 90 512
"""

import sys

from repro.models import ParametricWorkloadModel
from repro.scheduler import EasyBackfillScheduler, compute_metrics, simulate
from repro.util.tables import format_table
from repro.workload import compute_statistics


def main() -> None:
    al = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    pm = float(sys.argv[2]) if len(sys.argv) > 2 else 8.0
    im = float(sys.argv[3]) if len(sys.argv) > 3 else 120.0
    procs = int(sys.argv[4]) if len(sys.argv) > 4 else 256

    model = ParametricWorkloadModel()
    predicted = model.predict_variables(al, pm, im)
    print(
        format_table(
            ["variable", "predicted"],
            [[k, v] for k, v in predicted.items()],
            title=f"Predicted workload profile for AL={al}, Pm={pm:g}, Im={im:g}",
        )
    )
    print("\nRegression quality (R^2 on the ten production workloads):")
    for sign, reg in sorted(model.regressions.items()):
        print(f"  {sign}: {reg.r_squared:.2f}")

    stream = model.generate(
        8000, al=al, pm=pm, im=im, machine_procs=procs, seed=0
    )
    measured = compute_statistics(stream).by_sign()
    print(
        "\nGenerated stream check: "
        f"Rm={measured['Rm']:.0f}s (predicted {predicted['Rm']:.0f}s), "
        f"Im={measured['Im']:.0f}s (input {im:g}s)"
    )

    metrics = compute_metrics(simulate(stream, EasyBackfillScheduler()))
    print(
        f"\nUnder EASY backfilling on {procs} processors: "
        f"mean wait {metrics.mean_wait:.0f}s, "
        f"p95 wait {metrics.p95_wait:.0f}s, "
        f"utilization {metrics.utilization:.2f}"
    )
    print(
        "\n(The stream is self-similar by default - the feature Section 9\n"
        "shows the 1990s models lacked; pass self_similar=False to generate\n"
        "the optimistic i.i.d. version and compare.)"
    )


if __name__ == "__main__":
    main()
