#!/usr/bin/env python
"""Self-similarity audit of a workload — the Section 9 / Table 3 workflow.

Estimates the Hurst parameter of the four per-job attribute series (used
processors, runtime, total CPU time, inter-arrival time) with all three of
the paper's estimators plus the local-Whittle extension, and prints a
Table 3-style row with a verdict.

Run:  python examples/selfsim_audit.py [trace.swf | workload-name]
      (default: the synthesized LANL log; try "Lublin" or "SDSCb")
"""

import sys

from repro.archive import synthesize_workload
from repro.archive.targets import PRODUCTION_NAMES, TABLE2_NAMES
from repro.models.registry import MODEL_NAMES, create_model
from repro.selfsim import SERIES_ATTRIBUTES, estimate_hurst, workload_series
from repro.util.tables import format_table
from repro.workload import read_swf


def load_workload(arg: str):
    if arg in PRODUCTION_NAMES or arg in TABLE2_NAMES:
        return synthesize_workload(arg, n_jobs=20000, seed=0)
    if arg in MODEL_NAMES:
        return create_model(arg).generate(20000, seed=0)
    return read_swf(arg)


def main() -> None:
    target = sys.argv[1] if len(sys.argv) > 1 else "LANL"
    workload = load_workload(target)
    print(f"Workload: {workload.name}, {len(workload)} jobs")

    methods = ("rs", "variance", "periodogram", "whittle")
    rows = []
    votes = 0
    cells = 0
    for attribute in SERIES_ATTRIBUTES:
        series = workload_series(workload, attribute)
        row = [attribute]
        for method in methods:
            try:
                est = estimate_hurst(series, method)
                row.append(est.h)
                cells += 1
                votes += est.is_self_similar
                # The graphical estimators carry their regression quality.
                if est.fit is not None and est.fit.r_squared < 0.5:
                    row[-1] = est.h  # keep the value; quality shown below
            except ValueError:
                row.append(None)
        rows.append(row)
    print(
        format_table(
            ["series"] + [m.upper() for m in methods],
            rows,
            float_fmt="{:.2f}",
            title="Hurst parameter estimates (0.5 = none, -> 1.0 = strongly self-similar)",
        )
    )

    fraction = votes / cells if cells else 0.0
    print(f"\n{votes}/{cells} estimates above 0.5.")
    if fraction > 0.75:
        print("Verdict: SELF-SIMILAR - schedulers evaluated against this workload")
        print("must cope with long-range dependence and bursty aggregates.")
    elif fraction < 0.4:
        print("Verdict: not self-similar - typical of the synthetic models the")
        print("paper examined (none of which captured the phenomenon).")
    else:
        print("Verdict: mixed evidence - the paper's advice applies: avoid")
        print("conclusions from any single estimator.")


if __name__ == "__main__":
    main()
