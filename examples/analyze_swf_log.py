#!/usr/bin/env python
"""Audit an SWF log for homogeneity over time — the Section 6 workflow.

The paper: "Co-plot could be used in this manner to test any new log, by
dividing it into several parts and mapping it with all the other
workloads.  This should tell whether the log is homogeneous, and whether
it contains time intervals in which work on the logged machine had
unusual patterns."

This example does exactly that for any SWF file:

1. parse the log (or, with no argument, synthesize a LANL-like log that
   *contains* a usage shift, as the real CM-5 log did in late 1995);
2. split it into time windows and extract each window's variable vector;
3. Co-plot the windows together with the ten reference workloads;
4. flag windows that land far from the log's own centroid.

Run:  python examples/analyze_swf_log.py [trace.swf]
"""

import sys

import numpy as np

from repro.archive import synthesize_workload
from repro.coplot import render_ascii_map
from repro.experiments.common import FIGURE3_SIGNS, default_coplot, production_matrix
from repro.workload import compute_statistics, read_swf, split_time_windows
from repro.workload.variables import observation_matrix


def load_or_synthesize(argv):
    if len(argv) > 1:
        print(f"Reading {argv[1]} ...")
        return read_swf(argv[1]), 4
    # No file given: build a demo log with a deliberate regime change by
    # stitching a quiet LANL year to its wildly different second year.
    print("No SWF file given - synthesizing a LANL-like log with a usage shift.")
    from repro.workload import Workload
    from repro.workload.fields import FIELD_NAMES

    year1 = synthesize_workload("L1", n_jobs=6000, seed=1)
    year2 = synthesize_workload("L3", n_jobs=6000, seed=2)
    # Shift the second part after the first in time.
    offset = year1.end_times.max() + 1.0
    shifted_cols = {name: np.array(year2.column(name)) for name in FIELD_NAMES}
    shifted_cols["submit_time"] = shifted_cols["submit_time"] + offset
    year2_shifted = Workload(shifted_cols, year2.machine, "demo")
    return year1.with_name("demo").concat(year2_shifted), 4


def main() -> None:
    log, n_windows = load_or_synthesize(sys.argv)
    print(f"Log: {log.name}, {len(log)} jobs on {log.machine.processors} processors")

    windows = split_time_windows(log, n_windows, label_fmt="{name}-P{i}")
    window_stats = [compute_statistics(w) for w in windows if len(w) > 50]
    if len(window_stats) < 2:
        raise SystemExit("log too short to split; nothing to audit")

    # Reference map: the paper's ten production workloads.
    ref_matrix, ref_labels = production_matrix(FIGURE3_SIGNS)
    win_matrix, win_labels = observation_matrix(window_stats, FIGURE3_SIGNS)
    y = np.vstack([ref_matrix, win_matrix])
    labels = ref_labels + win_labels

    result = default_coplot().fit(y, labels=labels, signs=list(FIGURE3_SIGNS))
    print(render_ascii_map(result))

    # Homogeneity verdict: compare each window's distance from the window
    # centroid against the overall spread of the map.
    win_pos = np.array([result.position(l) for l in win_labels])
    centroid = win_pos.mean(axis=0)
    spread = float(
        np.mean(np.linalg.norm(result.coords - result.coords.mean(axis=0), axis=1))
    )
    print(f"\nHomogeneity audit (map spread = {spread:.2f}):")
    for label, pos in zip(win_labels, win_pos):
        gap = float(np.linalg.norm(pos - centroid))
        verdict = "UNUSUAL" if gap > 0.75 * spread else "ok"
        print(f"  {label}: distance from log centroid = {gap:.2f}  [{verdict}]")
    print("\nWindows flagged UNUSUAL deserve the Section 6 treatment: ask the")
    print("site what changed (at LANL it was the CM-5 approaching end of life).")


if __name__ == "__main__":
    main()
