#!/usr/bin/env python
"""Quickstart: run a Co-plot analysis on the paper's production workloads.

This is Figure 1 of the paper in ~20 lines: build the observation matrix
from the embedded Table 1, run the four-stage Co-plot pipeline, and read
off the map — goodness of fit, variable clusters, outliers, and how one
workload is characterized by the variable arrows.

Run:  python examples/quickstart.py
"""

from repro import Coplot
from repro.coplot import render_ascii_map
from repro.experiments.common import FIGURE1_SIGNS, production_matrix


def main() -> None:
    # 1. The observation matrix: 10 production workloads x 9 variables
    #    (medians/intervals of runtime, parallelism, CPU work and
    #    inter-arrival times, plus the runtime load).
    y, labels = production_matrix(FIGURE1_SIGNS)

    # 2. Normalize -> city-block dissimilarity -> SSA map -> arrows.
    result = Coplot().fit(y, labels=labels, signs=list(FIGURE1_SIGNS))

    # 3. The map and its quality.  The paper calls alienation < 0.15 good;
    #    this analysis lands around 0.07 with average correlation 0.88.
    print(render_ascii_map(result))

    # 4. Variables whose arrows point the same way are correlated across
    #    systems: runtime median and interval always travel together.
    print("Variable clusters:", result.variable_clusters())

    # 5. Observations far from the centre of gravity are unusual systems.
    print("Outliers:", result.outliers(factor=1.3))

    # 6. Project a workload on the arrows to characterize it: positive
    #    means above average in that variable.
    ctc = result.characterization("CTC")
    print("CTC characterization:", {k: round(v, 2) for k, v in ctc.items()})
    print("-> CTC runs long jobs (Rm high) at low parallelism (Nm low).")


if __name__ == "__main__":
    main()
