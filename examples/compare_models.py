#!/usr/bin/env python
"""Which synthetic model matches which machine?  (The Figure 4 question.)

Generates a stream from each of the five models, maps them together with
the ten production workloads, and prints each model's nearest production
environments — the paper's headline that "each model usually covers well
one machine type".

Run:  python examples/compare_models.py [n_jobs]
"""

import sys

from repro.experiments.figure4 import run_figure4


def main() -> None:
    n_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 10000
    result = run_figure4(n_jobs=n_jobs, seed=0)
    print(result.render())

    print("\nPer-model verdicts:")
    for model in ("Lublin", "Downey", "Feitelson96", "Feitelson97", "Jann"):
        ranked = list(result.coplot.distances_from(model).items())
        production = [(n, d) for n, d in ranked if not _is_model(n)]
        best, dist = production[0]
        print(
            f"  {model:<12} -> best match {best} (map distance {dist:.2f}); "
            f"runner-up {production[1][0]}"
        )
    # The same question for a single trace, as an API: rank every model
    # against a synthesized CTC-like log by order-statistic, marginal and
    # Hurst distances.
    from repro.archive import synthesize_workload
    from repro.models import rank_models

    print("\nValidation ranking against a CTC-like trace:")
    ctc = synthesize_workload("CTC", n_jobs=min(n_jobs, 8000), seed=0)
    for report in rank_models(ctc, n_jobs=min(n_jobs, 8000), seed=0):
        print(
            f"  {report.model_name:<12} score={report.score():.3f} "
            f"(0 = indistinguishable)"
        )

    print(
        "\nTakeaway (Section 8): no single model covers all machines - a\n"
        "general model must be parameterized, e.g. by {AL, Pm, Im}."
    )


def _is_model(name: str) -> bool:
    return name in ("Lublin", "Downey", "Feitelson96", "Feitelson97", "Jann")


if __name__ == "__main__":
    main()
