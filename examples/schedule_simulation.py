#!/usr/bin/env python
"""Evaluate schedulers under a chosen workload — and see why the workload
model matters.

The paper's whole premise is that scheduler evaluation needs realistic
workloads; its Section 9 shows the synthetic models of the day lacked
self-similarity, and leaves the consequence open.  This example makes the
consequence visible: run the same machine under

  (a) a production-like, self-similar workload, and
  (b) its independence shuffle (identical marginals, no burstiness),

through FCFS and EASY backfilling, and compare the numbers a scheduler
evaluation would report.

Run:  python examples/schedule_simulation.py [workload] [n_jobs]
      workload: a production name (default LANL) or model name (Lublin...)
"""

import sys

from repro.archive import synthesize_workload
from repro.archive.targets import PRODUCTION_NAMES
from repro.experiments.load_alteration import scale_workload
from repro.models.registry import MODEL_NAMES, create_model
from repro.scheduler import (
    EasyBackfillScheduler,
    FcfsScheduler,
    ScheduleMetrics,
    compute_metrics,
    shuffle_interarrivals,
    shuffle_order,
    simulate,
)
from repro.util.tables import format_table


def main() -> None:
    source = sys.argv[1] if len(sys.argv) > 1 else "LANL"
    n_jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 4000

    if source in PRODUCTION_NAMES:
        workload = synthesize_workload(source, n_jobs=n_jobs, seed=0)
        # Slow the arrivals to a moderate load so queues stay finite.
        workload = scale_workload(workload, field="interarrival", factor=1.6)
    elif source in MODEL_NAMES:
        workload = create_model(source).generate(n_jobs, seed=0)
    else:
        raise SystemExit(f"unknown workload {source!r}")

    control = shuffle_order(shuffle_interarrivals(workload, seed=1), seed=2)
    rows = []
    for label, stream in (("as-is", workload), ("shuffled (i.i.d.)", control)):
        for policy in (FcfsScheduler(), EasyBackfillScheduler()):
            metrics = compute_metrics(simulate(stream, policy))
            rows.append([f"{label} / {policy.name}"] + metrics.as_row())

    print(
        format_table(
            ["scenario"] + ScheduleMetrics.ROW_HEADERS,
            rows,
            float_fmt="{:.3g}",
            title=f"Scheduling {workload.name} on {workload.machine.processors} processors",
        )
    )
    print(
        "\nIf the 'as-is' and 'shuffled' rows differ substantially, a model\n"
        "without self-similarity would have misjudged this machine - the\n"
        "answer to the paper's closing question."
    )


if __name__ == "__main__":
    main()
