#!/usr/bin/env python
"""Generate a synthetic workload and write it in Standard Workload Format.

Demonstrates the generator API end to end: pick a model (or a synthesized
production log), generate a job stream for a target machine size, report
its Table 1-style statistics, and save it as an SWF file any archive tool
can read back.

Run:  python examples/generate_workload.py [model] [n_jobs] [out.swf]
      model in {Lublin, Downey, Feitelson96, Feitelson97, Jann} or a
      production name like CTC (default: Lublin 10000 jobs -> out.swf)
"""

import sys

from repro.archive import synthesize_workload
from repro.archive.targets import PRODUCTION_NAMES
from repro.models.registry import MODEL_NAMES, create_model
from repro.util.tables import format_table
from repro.workload import compute_statistics, read_swf, write_swf


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "Lublin"
    n_jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 10000
    out_path = sys.argv[3] if len(sys.argv) > 3 else "out.swf"

    if model_name in MODEL_NAMES:
        workload = create_model(model_name).generate(n_jobs, seed=0)
    elif model_name in PRODUCTION_NAMES:
        workload = synthesize_workload(model_name, n_jobs=n_jobs, seed=0)
    else:
        raise SystemExit(
            f"unknown source {model_name!r}; pick one of "
            f"{', '.join(MODEL_NAMES + PRODUCTION_NAMES)}"
        )

    stats = compute_statistics(workload).by_sign()
    print(
        format_table(
            ["variable", "value"],
            [[k, v] for k, v in stats.items()],
            title=f"{workload.name}: {len(workload)} jobs",
        )
    )

    write_swf(workload, out_path, headers={"Generator": f"repro {model_name}"})
    print(f"\nWrote {out_path}")

    # Round-trip sanity: the file parses back to the same job count and
    # machine size.
    back = read_swf(out_path)
    assert len(back) == len(workload)
    assert back.machine.processors == workload.machine.processors
    print(f"Round-trip check passed: {len(back)} jobs, "
          f"{back.machine.processors} processors.")


if __name__ == "__main__":
    main()
